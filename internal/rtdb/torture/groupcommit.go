package torture

import (
	"errors"
	"fmt"
	"time"

	"rtc/internal/faultfs"
	wal "rtc/internal/rtdb/log"
)

// ModeGroupCommit tortures the leader-based group-commit path: appends
// enqueue commit tickets behind a commit window and crash/EIO faults are
// armed at every point inside the batch, so the whole-batch failure
// semantics (one fsync covers many acks; one fault poisons them all) are
// exercised at every op the batch performs.
const ModeGroupCommit Mode = "groupcommit"

// groupBatchEvery is the driver's fsync cadence: the workload appends
// tickets and issues one explicit Sync per this many appends, so a sweep
// point knows exactly which tickets each covering fsync acknowledged.
const groupBatchEvery = 4

// groupWindow is deliberately longer than any sweep run: the batch leaders
// park on their timers and every fsync in the op stream is the driver's
// own, keeping the fault points deterministic in filesystem-op counts.
const groupWindow = time.Hour

// GroupCommitSweep is the group-commit variant of the crash and EIO
// sweeps. Appends go through AppendTicket into hour-long commit windows;
// the driver fsyncs every groupBatchEvery appends, so each fault point
// lands somewhere inside a batch: before its frames, between them, or on
// the covering fsync itself. The invariants are the grouped durability
// contract:
//
//   - every ticket resolves (crash, poison, or commit — never a hang),
//   - tickets resolved nil form a prefix of issue order (a batch never
//     commits over an earlier uncommitted one),
//   - acked ≤ n ≤ issued+1: no nil-resolved ticket's event is lost, and
//     nothing resurrects beyond the issued suffix,
//   - n − acked ≤ groupBatchEvery+1: at most one unacked batch window
//     (plus the in-flight frame) survives the cut,
//   - transient EIO inside a batch heals without poisoning, and the final
//     fsync releases every surviving ticket nil.
func (c Config) GroupCommitSweep() *Report {
	c.defaults()
	c.GroupWindow = groupWindow
	events := Workload(c.Seed, c.Events)
	rep := &Report{}

	// Crash half: power cut at every Stride-th mutating op.
	start, stride := uint64(1), uint64(c.Stride)
	if c.At > 0 {
		start, stride = c.At, 0
	}
	for at := start; ; at += stride {
		done, fail := c.groupCrashPoint(events, at)
		if done {
			break
		}
		rep.Points++
		if fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if c.At > 0 {
			break
		}
	}

	// EIO half: one transient write fault at every Stride-th data write.
	// Probe the faultless grouped run once to learn the write count.
	probe := faultfs.NewMem(pointSeed(c.Seed, 0))
	l, err := wal.Open(c.walOptions(probe))
	if err != nil {
		rep.Failures = append(rep.Failures, Failure{Mode: ModeGroupCommit, Seed: c.Seed, Events: c.Events, Detail: err.Error()})
		return rep
	}
	issued := 0
	for _, e := range events {
		if _, err := l.AppendTicket(e, false); err != nil {
			rep.Failures = append(rep.Failures, Failure{Mode: ModeGroupCommit, Seed: c.Seed, Events: c.Events,
				Detail: fmt.Sprintf("faultless probe append failed: %v", err)})
			return rep
		}
		if issued++; issued%groupBatchEvery == 0 {
			if err := l.Sync(); err != nil {
				rep.Failures = append(rep.Failures, Failure{Mode: ModeGroupCommit, Seed: c.Seed, Events: c.Events,
					Detail: fmt.Sprintf("faultless probe sync failed: %v", err)})
				return rep
			}
		}
	}
	writes := probe.Writes()
	l.Close()

	start = uint64(1)
	if c.At > 0 {
		start = c.At
	}
	for at := start; at <= writes; at += uint64(c.Stride) {
		rep.Points++
		if fail := c.groupEIOPoint(events, at); fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if c.At > 0 {
			break
		}
	}

	if c.Logf != nil {
		c.Logf("groupcommit sweep: seed=%d writes=%d points=%d recoveries=%d failures=%d",
			c.Seed, writes, rep.Points, rep.Recoveries, len(rep.Failures))
	}
	return rep
}

// groupCrashPoint runs one grouped workload with a power cut armed at
// mutating op `at`. done reports that `at` lies beyond the workload.
func (c Config) groupCrashPoint(events []wal.Event, at uint64) (done bool, fail *Failure) {
	mem := faultfs.NewMem(pointSeed(c.Seed, at))
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeGroupCommit, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(mem),
		}
	}
	l, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return false, mkFail("initial Open: %v", err)
	}
	mem.CrashAt(at)
	var tickets []*wal.Ticket
	for _, e := range events {
		t, err := l.AppendTicket(e, false)
		if err != nil {
			break
		}
		tickets = append(tickets, t)
		if len(tickets)%groupBatchEvery == 0 {
			if err := l.Sync(); err != nil {
				break
			}
		}
	}
	dead := mem.Dead()
	// Close resolves every outstanding ticket: on a dead filesystem its
	// fsync fails and the whole tail releases with the error; on a live one
	// it commits the tail. Either way no leader goroutine outlives the
	// point parked on an hour-long window.
	_ = l.Close()
	if !dead {
		// The fault point lies beyond the workload's op count.
		return true, nil
	}
	mem.Crash()

	// Every ticket must have resolved, and the nil resolutions must form a
	// prefix of issue order: a later batch committing over an earlier
	// uncommitted one would reorder durability.
	issued := len(tickets)
	acked, firstErr := 0, -1
	for i, t := range tickets {
		if !t.Resolved() {
			return false, mkFail("ticket %d (seq %d) never resolved after the cut", i, t.Seq())
		}
		if t.Wait() == nil {
			if firstErr >= 0 {
				return false, mkFail("nil-resolved tickets not a prefix: ticket %d committed after ticket %d failed", i, firstErr)
			}
			acked++
		} else if firstErr < 0 {
			firstErr = i
		}
	}

	l2, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return false, mkFail("recovery Open after crash: %v", err)
	}
	defer l2.Close()
	n := int(l2.State().Events)
	switch {
	case n < acked:
		return false, mkFail("recovered %d events but %d tickets committed (durability lost)", n, acked)
	case n > issued+1:
		return false, mkFail("recovered %d events but only %d were issued before the cut (resurrection)", n, issued+1)
	case n-acked > groupBatchEvery+1:
		return false, mkFail("recovered %d events with only %d acked: more than one batch window survived unacked", n, acked)
	}
	if ds, sq := l2.DurableSeq(), l2.Seq(); ds != sq {
		return false, mkFail("recovered log's durable tail %d != tail %d", ds, sq)
	}
	want := Reference(events[:n])
	if d := want.Diff(l2.State()); d != "" {
		return false, mkFail("recovery invariant violated at prefix %d: %s", n, d)
	}

	// Idempotent: a second Open reproduces the identical state.
	if err := l2.Close(); err != nil {
		return false, mkFail("close after recovery: %v", err)
	}
	l3, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return false, mkFail("second recovery Open: %v", err)
	}
	defer l3.Close()
	if d := want.Diff(l3.State()); d != "" {
		return false, mkFail("recovery not idempotent: %s", d)
	}

	// Live: a grouped append past the crash lands and commits via Sync.
	if n >= 2 { // catalog prologue replayed, image exists
		t, err := l3.AppendTicket(wal.Sample(want.LastAt+1, "temp", "post-crash"), false)
		if err != nil {
			return false, mkFail("append after recovery: %v", err)
		}
		if err := l3.Sync(); err != nil {
			return false, mkFail("sync after recovery: %v", err)
		}
		if err := t.Wait(); err != nil {
			return false, mkFail("post-crash ticket resolved %v after a clean sync", err)
		}
	}
	return false, nil
}

// groupEIOPoint injects one transient fault — alternating torn short write
// and plain EIO — into data write `at` of the grouped workload. The log
// must heal without poisoning the batch, and the final fsync must release
// every surviving ticket nil.
func (c Config) groupEIOPoint(events []wal.Event, at uint64) *Failure {
	mem := faultfs.NewMem(pointSeed(c.Seed, at))
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeGroupCommit, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(mem),
		}
	}
	if at%2 == 0 {
		mem.TearWrite(at)
	} else {
		mem.FailWrite(at)
	}
	l, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return mkFail("Open: %v", err)
	}
	var acked []wal.Event
	var tickets []*wal.Ticket
	faulted := 0
	for _, e := range events {
		t, err := l.AppendTicket(e, false)
		switch {
		case err == nil:
			acked = append(acked, e)
			tickets = append(tickets, t)
			if len(tickets)%groupBatchEvery == 0 {
				if err := l.Sync(); err != nil {
					return mkFail("sync failed after heal: %v", err)
				}
			}
		case errors.Is(err, faultfs.ErrInjected):
			faulted++
		case faulted > 0:
			// The fault may have cost a catalog event; later events that
			// depend on it are rightly rejected by validation.
		default:
			return mkFail("append returned unexpected error: %v", err)
		}
	}
	// The final fsync covers the tail batch: every ticket must resolve nil
	// — a healed transient fault never fails a committed neighbor.
	if err := l.Sync(); err != nil {
		return mkFail("final sync: %v", err)
	}
	for i, t := range tickets {
		if !t.Resolved() {
			return mkFail("ticket %d (seq %d) unresolved after final sync", i, t.Seq())
		}
		if err := t.Wait(); err != nil {
			return mkFail("ticket %d (seq %d) resolved %v; the transient fault leaked into the batch", i, t.Seq(), err)
		}
	}
	if perr := l.Err(); perr != nil {
		return mkFail("transient fault poisoned the log: %v", perr)
	}
	if faulted > 1 {
		return mkFail("one injected write fault surfaced %d append errors", faulted)
	}
	if st := l.Stats(); st.GroupCommits == 0 {
		return mkFail("grouped run recorded zero group commits (%d appends)", st.Appends)
	}
	want := Reference(acked)
	if d := want.Diff(l.State()); d != "" {
		return mkFail("live state after heal: %s", d)
	}
	if err := l.Close(); err != nil {
		return mkFail("close: %v", err)
	}
	l2, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return mkFail("recovery Open: %v", err)
	}
	defer l2.Close()
	if d := want.Diff(l2.State()); d != "" {
		return mkFail("recovered state != acked events: %s", d)
	}
	return nil
}
