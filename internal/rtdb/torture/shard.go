package torture

import (
	"fmt"
	"math/rand/v2"

	"rtc/internal/faultfs"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// ModeShard power-cuts ONE shard's WAL at every fault point of a sharded
// deployment while the other shards keep committing, then recovers every
// shard and checks the sharded durability invariants.
const ModeShard Mode = "shard"

// shardSalt decorrelates the per-shard filesystems of one fault point.
func shardSalt(shard int) uint64 { return 0x100000001b3 * uint64(shard+1) }

// shardWorkload is the seeded event stream of one sharded run, pre-routed:
// step i carries the events issued at step i for each shard. A sample or
// firing lands on its object's owner (rtwire.ShardOf — the same placement
// clients compute); an invariant overwrite is broadcast to every shard,
// exactly as splitSpec replicates invariants.
type shardWorkload struct {
	objects []string
	owner   []int          // objects[i] -> owning shard
	steps   [][]shardEvent // per step, the routed events
}

type shardEvent struct {
	shard int
	e     wal.Event
}

// makeShardWorkload builds the routed workload: a per-shard catalog
// prologue (shared invariant + owned images), then n seeded steps mixing
// samples, invariant broadcasts, and rule firings across a keyspace wide
// enough that every shard owns at least one object.
func makeShardWorkload(seed uint64, n, shards int) *shardWorkload {
	w := &shardWorkload{}
	for i := 0; len(w.objects) < 3*shards; i++ {
		w.objects = append(w.objects, fmt.Sprintf("obj-%02d", i))
	}
	for _, o := range w.objects {
		w.owner = append(w.owner, int(rtwire.ShardOf(o, shards)))
	}

	// Prologue: every shard gets the invariant; each image goes to its
	// owner. One prologue step per event keeps fault points fine-grained.
	broadcast := func(e wal.Event) {
		var step []shardEvent
		for s := 0; s < shards; s++ {
			step = append(step, shardEvent{shard: s, e: e})
		}
		w.steps = append(w.steps, step)
	}
	broadcast(wal.Invariant("limit", "22"))
	for i, o := range w.objects {
		w.steps = append(w.steps, []shardEvent{{shard: w.owner[i], e: wal.Image(o, timeseq.Time(3+i%5))}})
	}

	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	at := timeseq.Time(0)
	for i := 0; i < n; i++ {
		at += timeseq.Time(rng.IntN(3))
		oi := rng.IntN(len(w.objects))
		switch rng.IntN(12) {
		case 0:
			w.steps = append(w.steps, []shardEvent{{shard: w.owner[oi], e: wal.Firing(at, "alarm")}})
		case 1:
			broadcast(wal.Invariant("limit", fmt.Sprintf("%d", 20+rng.IntN(5))))
		default:
			w.steps = append(w.steps, []shardEvent{{shard: w.owner[oi], e: wal.Sample(at, w.objects[oi], fmt.Sprintf("v%d", i))}})
		}
	}
	return w
}

// ShardSweep runs the sharded variant of the crash sweep. For every victim
// shard in turn, it arms a power cut at every Stride-th mutating
// filesystem operation of that shard's WAL, drives the routed workload —
// the surviving shards keep committing after the victim dies — and at each
// point asserts:
//
//   - per-shard durability: the victim recovers acked ≤ n ≤ acked+1 of the
//     events issued to it, deep-equal to the reference prefix; every
//     survivor recovers exactly its acked events,
//   - cross-shard sum conservation: Σ recovered lies within
//     [Σ acked, Σ acked + 1] — only the victim's single in-flight append
//     may exceed its acks,
//   - no horizon regression: the group's consistent horizon (min over
//     shards of the recovered last chronon) is never behind the horizon
//     computed from acknowledged writes,
//   - liveness: the recovered victim accepts a post-crash append.
func (c Config) ShardSweep() *Report {
	c.defaults()
	if c.Shards <= 0 {
		c.Shards = 4
	}
	rep := &Report{}
	victims := make([]int, 0, c.Shards)
	if c.At > 0 {
		victims = append(victims, c.Victim%c.Shards)
	} else {
		for v := 0; v < c.Shards; v++ {
			victims = append(victims, v)
		}
	}
	w := makeShardWorkload(c.Seed, c.Events, c.Shards)
	for _, victim := range victims {
		start, stride := uint64(1), uint64(c.Stride)
		if c.At > 0 {
			start, stride = c.At, 0
		}
		for at := start; ; at += stride {
			done, fail := c.shardPoint(w, victim, at)
			if done {
				break
			}
			rep.Points++
			if fail != nil {
				rep.Failures = append(rep.Failures, *fail)
			} else {
				rep.Recoveries++
			}
			if c.At > 0 {
				break
			}
		}
	}
	if c.Logf != nil {
		c.Logf("shard sweep: seed=%d shards=%d points=%d recoveries=%d failures=%d",
			c.Seed, c.Shards, rep.Points, rep.Recoveries, len(rep.Failures))
	}
	return rep
}

// shardPoint runs one routed workload with a power cut armed at mutating
// op `at` of the victim shard's filesystem. done reports that `at` lies
// beyond the victim's op count (this victim's sweep is complete).
func (c Config) shardPoint(w *shardWorkload, victim int, at uint64) (done bool, fail *Failure) {
	mems := make([]*faultfs.Mem, c.Shards)
	logs := make([]*wal.Log, c.Shards)
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeShard, Seed: c.Seed, At: at, Events: c.Events, Victim: victim,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(mems[victim]),
		}
	}
	for s := 0; s < c.Shards; s++ {
		mems[s] = faultfs.NewMem(pointSeed(c.Seed, at) ^ shardSalt(s))
	}
	for s := 0; s < c.Shards; s++ {
		l, err := wal.Open(c.walOptions(mems[s]))
		if err != nil {
			return false, mkFail("shard %d Open: %v", s, err)
		}
		logs[s] = l
	}
	mems[victim].CrashAt(at)

	// Drive the routed workload. The victim's first failed append kills it
	// (power cut); every other shard must keep acking to the end.
	issued := make([][]wal.Event, c.Shards) // per-shard issue order
	acked := make([]int, c.Shards)
	ackedAt := make([]timeseq.Time, c.Shards) // last acked chronon per shard
	victimDead := false
	for _, step := range w.steps {
		for _, se := range step {
			if se.shard == victim && victimDead {
				continue
			}
			issued[se.shard] = append(issued[se.shard], se.e)
			if err := logs[se.shard].Append(se.e); err != nil {
				if se.shard != victim {
					return false, mkFail("survivor shard %d append failed: %v", se.shard, err)
				}
				victimDead = true
				continue
			}
			acked[se.shard]++
			if se.e.At > ackedAt[se.shard] {
				ackedAt[se.shard] = se.e.At
			}
		}
	}
	if !mems[victim].Dead() {
		// The fault point lies beyond this victim's op count.
		for _, l := range logs {
			l.Close()
		}
		return true, nil
	}
	mems[victim].Crash()

	// Survivors shut down cleanly; the victim's handle is garbage now (its
	// filesystem is dead), recovery below reopens from the crash image.
	ackedSum, recoveredSum := 0, 0
	ackHorizon := timeseq.Time(1<<62 - 1)
	recHorizon := timeseq.Time(1<<62 - 1)
	for s := 0; s < c.Shards; s++ {
		ackedSum += acked[s]
		if ackedAt[s] < ackHorizon {
			ackHorizon = ackedAt[s]
		}
		if s != victim {
			if err := logs[s].Close(); err != nil {
				return false, mkFail("survivor shard %d close: %v", s, err)
			}
		}
	}

	for s := 0; s < c.Shards; s++ {
		l2, err := wal.Open(c.walOptions(mems[s]))
		if err != nil {
			return false, mkFail("shard %d recovery Open: %v", s, err)
		}
		st := l2.State()
		n := int(st.Events)
		recoveredSum += n
		if st.LastAt < recHorizon {
			recHorizon = st.LastAt
		}
		switch {
		case s == victim && !c.NoSync && n < acked[s]:
			l2.Close()
			return false, mkFail("victim recovered %d events but %d were acked+fsynced (durability lost)", n, acked[s])
		case s == victim && n > acked[s]+1:
			l2.Close()
			return false, mkFail("victim recovered %d events but only %d were issued before the cut (resurrection)", n, acked[s]+1)
		case s != victim && n != acked[s]:
			l2.Close()
			return false, mkFail("survivor shard %d recovered %d events, acked %d — survivors must be exact", s, n, acked[s])
		case n > len(issued[s]):
			l2.Close()
			return false, mkFail("shard %d recovered %d events, only %d issued", s, n, len(issued[s]))
		}
		want := Reference(issued[s][:n])
		if d := want.Diff(st); d != "" {
			l2.Close()
			return false, mkFail("shard %d recovery invariant violated at prefix %d: %s", s, n, d)
		}
		if s == victim {
			// Liveness: the recovered victim takes a post-crash append for
			// an image it already knows about.
			for name := range st.Images {
				if err := l2.Append(wal.Sample(st.LastAt+1, name, "post-crash")); err != nil {
					l2.Close()
					return false, mkFail("victim append after recovery: %v", err)
				}
				break
			}
		}
		if err := l2.Close(); err != nil {
			return false, mkFail("shard %d close after recovery: %v", s, err)
		}
	}

	// Cross-shard sum conservation: the group as a whole may exceed its
	// acknowledged writes by at most the victim's single in-flight append.
	if recoveredSum < ackedSum || recoveredSum > ackedSum+1 {
		return false, mkFail("cross-shard sum conservation violated: recovered %d, acked %d", recoveredSum, ackedSum)
	}
	// No horizon regression: every acknowledged write is durable, so the
	// consistent horizon recomputed from the recovered shards can never be
	// behind the horizon the group had acknowledged.
	if recHorizon < ackHorizon {
		return false, mkFail("consistent horizon regressed: acked %d, recovered %d", ackHorizon, recHorizon)
	}
	return false, nil
}
