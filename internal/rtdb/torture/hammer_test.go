package torture

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	"rtc/internal/faultnet"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/replica"
	"rtc/internal/rtdb/server"
)

// TestPartitionHammer is the race-grade chaos run behind `make
// race-partition`: 32 clients and one replica hammer a primary through a
// chaos-shaped fabric (split writes, jittered delivery) while a fault
// monkey cuts, stalls, and partitions links at random. Under -race this
// shakes out data races on every teardown, watchdog, and redial path; the
// sweep owns determinism — this test owns survival: after the monkey
// stops and the fabric heals, the stack must still serve, and query
// accounting must balance on both nodes.
func TestPartitionHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos hammer: skipped in -short")
	}
	const (
		hammerClients = 32
		hammerEvents  = 60
		hammerRuntime = 1500 * time.Millisecond
	)

	fab := faultnet.NewFabric(1)
	defer fab.Close()
	fab.Chaos(9, 50*time.Microsecond)

	memP := faultfs.NewMem(1)
	lp, err := wal.Open(wal.Options{Dir: "hwal", FS: memP, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	srv, err := server.New(chaosServerConfig(lp, hammerClients+4, 64))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ns := netserve.New(srv, netserve.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		WriteTimeout:      150 * time.Millisecond,
		HandshakeTimeout:  500 * time.Millisecond,
		ReplBatch:         8, ReplWindow: 16, TailBuffer: 256,
		ReplStallTimeout: 300 * time.Millisecond,
	})
	pln, err := fab.Listen(partPrimary)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ns.Serve(pln) }()

	memR := faultfs.NewMem(2)
	rp, err := replica.Open(replica.Config{
		Primary:  partPrimary,
		Dialer:   fab.Dialer("replica"),
		WAL:      wal.Options{Dir: replDir, FS: memR, Sync: true},
		Name:     "hammer-follower",
		Catalog:  failoverCatalog(),
		Registry: rtdb.DeriveRegistry{"status": chaosDerive},
		Seed:     1,

		DialTimeout:  150 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
		HeartbeatTimeout: 400 * time.Millisecond,
		HandshakeTimeout: 500 * time.Millisecond,
		WriteTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rp.Start()

	// The clock driver: server chronons advance while the hammer runs.
	tickStop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-tickStop:
				return
			case <-time.After(time.Millisecond):
				_ = srv.Tick(1)
			}
		}
	}()

	// The fault monkey: random cuts, stalls, and one-way partitions, each
	// healed shortly after — a constant churn of the exact transitions the
	// watchdogs, eviction paths, and redial ladders synchronize on.
	monkeyStop := make(chan struct{})
	var monkeyWG sync.WaitGroup
	monkeyWG.Add(1)
	go func() {
		defer monkeyWG.Done()
		rng := rand.New(rand.NewPCG(99, 0x9e3779b97f4a7c15))
		ends := []string{"replica", partPrimary, "*"}
		for {
			select {
			case <-monkeyStop:
				return
			case <-time.After(time.Duration(5+rng.IntN(15)) * time.Millisecond):
			}
			from := ends[rng.IntN(len(ends))]
			switch rng.IntN(4) {
			case 0:
				fab.CutAll(from, "*")
			case 1:
				fab.StallAll(from, "*")
			case 2:
				fab.PartitionNow(faultnet.Direction{From: from, To: "*"})
			case 3:
				fab.PartitionNow(faultnet.Direction{From: "*", To: from})
			}
			select {
			case <-monkeyStop:
			case <-time.After(time.Duration(5 + rng.IntN(10)) * time.Millisecond):
			}
			fab.Heal()
		}
	}()

	var wg sync.WaitGroup
	for id := 0; id < hammerClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := fmt.Sprintf("h%d", id)
			cl, err := client.Dial(partPrimary, client.Options{
				Name: label, Dialer: fab.Dialer(label),
				DialTimeout: 150 * time.Millisecond, CallTimeout: time.Second,
				WriteTimeout:  150 * time.Millisecond,
				RetryAttempts: 4, RetryBackoff: time.Millisecond,
				RetryBackoffMax:   10 * time.Millisecond,
				HeartbeatInterval: 25 * time.Millisecond,
				Seed:              uint64(id + 1),
			})
			if err != nil {
				return // a monkey strike killed the handshake: fine, chaos won
			}
			defer cl.Close()
			if id%8 == 0 {
				if sub, err := cl.Subscribe(client.SubSpec{
					Query: "status_q", Period: 3, Kind: deadline.Soft,
					Deadline: 1 << 20, MinUseful: 1, Buffer: 64,
				}); err == nil {
					go func() {
						for range sub.Pushes() {
						}
					}()
					defer sub.Close()
				}
			}
			images := []string{"temp", "press"}
			for i := 0; i < hammerEvents; i++ {
				_ = cl.InjectSample(images[i%2], fmt.Sprintf("%d", 15+i%12))
				if i%3 == 2 {
					_, _ = cl.Query(client.Query{
						Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
					})
				}
				if i%7 == 6 {
					_ = cl.Flush()
				}
				time.Sleep(time.Duration(1+id%3) * time.Millisecond)
			}
		}(id)
	}

	time.Sleep(hammerRuntime)
	close(monkeyStop)
	monkeyWG.Wait()
	fab.Heal()
	wg.Wait()
	close(tickStop)
	tickWG.Wait()

	// Post-chaos liveness: a fresh client reaches the primary.
	cl, err := client.Dial(partPrimary, client.Options{
		Name: "post-chaos", Dialer: fab.Dialer("post-chaos"),
		DialTimeout: 500 * time.Millisecond, CallTimeout: 2 * time.Second,
		RetryAttempts: 6, RetryBackoff: time.Millisecond,
		RetryBackoffMax: 10 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatalf("post-chaos dial: %v", err)
	}
	if err := cl.InjectSample("temp", "20"); err != nil {
		t.Fatalf("post-chaos sample: %v", err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("post-chaos flush: %v", err)
	}
	cl.Close()

	if err := srv.Barrier(); err != nil {
		t.Errorf("post-chaos barrier: %v", err)
	}
	m := srv.Metrics.Snapshot()
	if m.QueriesIn != m.QueriesAccounted() {
		t.Errorf("primary conservation broken after chaos: in=%d accounted=%d",
			m.QueriesIn, m.QueriesAccounted())
	}
	ns.Close()
	srv.Stop()
	mr := rp.Metrics.Snapshot()
	if mr.QueriesIn != mr.QueriesAccounted() {
		t.Errorf("replica conservation broken after chaos: in=%d accounted=%d",
			mr.QueriesIn, mr.QueriesAccounted())
	}
	_ = rp.Close()
}
