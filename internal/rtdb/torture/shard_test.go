package torture

import (
	"reflect"
	"testing"

	"rtc/internal/rtwire"
)

func TestShardWorkloadDeterministic(t *testing.T) {
	a, b := makeShardWorkload(7, 50, 4), makeShardWorkload(7, 50, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different shard workloads")
	}
	c := makeShardWorkload(8, 50, 4)
	if reflect.DeepEqual(a.steps, c.steps) {
		t.Fatal("different seeds produced identical shard workloads")
	}
	// Routing is the wire placement, and wide enough to matter: every
	// object's owner matches rtwire.ShardOf and at least two shards own
	// objects.
	owners := map[int]bool{}
	for i, o := range a.objects {
		if want := int(rtwire.ShardOf(o, 4)); a.owner[i] != want {
			t.Fatalf("object %q owner %d, rtwire.ShardOf says %d", o, a.owner[i], want)
		}
		owners[a.owner[i]] = true
	}
	if len(owners) < 2 {
		t.Fatalf("keyspace collapsed onto %d shards", len(owners))
	}
}

func TestShardSweepShort(t *testing.T) {
	rep := Config{Seed: 11, Events: 30, Stride: 5, Shards: 3, Logf: t.Logf}.ShardSweep()
	report(t, rep)
}

func TestShardPointRepro(t *testing.T) {
	// The -at -victim reproduction path exercises exactly one fault point.
	rep := Config{Seed: 11, Events: 30, Shards: 3, At: 9, Victim: 1}.ShardSweep()
	if rep.Points != 1 {
		t.Fatalf("At=9 ran %d points, want 1", rep.Points)
	}
	report(t, rep)
}

func TestShardFailureRepro(t *testing.T) {
	f := Failure{Mode: ModeShard, Seed: 9, At: 41, Events: 90, Victim: 2}
	want := "go run ./cmd/rttorture -mode shard -seed 9 -at 41 -events 90 -victim 2"
	if got := f.Repro(); got != want {
		t.Fatalf("Repro() = %q, want %q", got, want)
	}
}

// TestShardSweepFull is the full-depth sweep `make torture` runs: every
// victim shard power-cut at every mutating op of its WAL. The ISSUE-level
// bar: at least 400 distinct fault points, all recovering clean.
func TestShardSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full shard sweep is make-torture tier")
	}
	rep := Config{Seed: 12, Events: 160, Shards: 4, Logf: t.Logf}.ShardSweep()
	report(t, rep)
	if rep.Points < 400 {
		t.Fatalf("full shard sweep exercised only %d fault points, want >= 400", rep.Points)
	}
}
