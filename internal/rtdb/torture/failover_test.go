package torture

import (
	"testing"
	"time"
)

// TestFailoverSweepShort is the tier-1 bounded variant: a handful of kill
// points with a live replica and a promotion at each one.
func TestFailoverSweepShort(t *testing.T) {
	rep := Config{Seed: 1, Events: 40, Stride: 17, Logf: t.Logf}.FailoverSweep()
	report(t, rep)
}

// TestFailoverSweepFull kills the primary at every single WAL fault point of
// the full workload — the ISSUE acceptance bar is ≥ 200 kill points.
func TestFailoverSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full failover sweep is minutes of work; run without -short")
	}
	rep := Config{Seed: 1, Stride: 1, Logf: t.Logf}.FailoverSweep()
	report(t, rep)
	if rep.Points < 200 {
		t.Fatalf("full sweep exercised only %d kill points, want >= 200", rep.Points)
	}
}

// TestFailoverGroupCommit re-runs the failover sweep with group commit
// enabled on both the primary and the replica WAL. The driver appends one
// event at a time and blocks for the replica's ack, so each append is a
// batch of one — the point is that the grouped code path (tickets, release
// at fsync, tail publication at durability, AppendBatch on the follower)
// preserves the replicated invariant acked ≤ n ≤ acked+1 at every kill
// point.
func TestFailoverGroupCommit(t *testing.T) {
	rep := Config{Seed: 3, Events: 40, Stride: 23, GroupWindow: 50 * time.Microsecond, Logf: t.Logf}.FailoverSweep()
	report(t, rep)
}

// TestFailoverSharded re-runs the failover sweep with the primary posing
// as each listener of a 4-wide sharded deployment in turn. The Welcome
// then carries a (shard, shards) placement announcement; the replica must
// ignore it and preserve the replicated invariant acked ≤ n ≤ acked+1 at
// every kill point, exactly as in the unsharded sweep.
func TestFailoverSharded(t *testing.T) {
	for victim := 0; victim < 4; victim++ {
		rep := Config{Seed: 5, Events: 40, Stride: 19, Shards: 4, Victim: victim, Logf: t.Logf}.FailoverSweep()
		report(t, rep)
		if rep.Points == 0 {
			t.Fatalf("victim %d: sweep exercised no kill points", victim)
		}
	}
}

// TestFailoverPointRepro pins one kill point the way `rttorture -mode
// failover -at K` would replay it.
func TestFailoverPointRepro(t *testing.T) {
	rep := Config{Seed: 1, Events: 40, At: 9}.FailoverSweep()
	if rep.Points != 1 {
		t.Fatalf("At should pin exactly one point, got %d", rep.Points)
	}
	report(t, rep)
}
