package torture

import (
	"reflect"
	"testing"
)

// Tier-1 bounded sweeps: every fault family runs at a reduced point count so
// `go test ./...` stays fast; `make torture` runs the full sweep.

func report(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Points == 0 {
		t.Fatal("sweep exercised zero fault points")
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f.String())
	}
	t.Logf("points=%d recoveries=%d", rep.Points, rep.Recoveries)
}

func TestWorkloadDeterministic(t *testing.T) {
	a, b := Workload(7, 50), Workload(7, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
	c := Workload(8, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical workloads")
	}
	// Reference must accept every workload it generates.
	if st := Reference(a); st.Events != uint64(len(a)) {
		t.Fatalf("reference applied %d of %d events", st.Events, len(a))
	}
}

func TestCrashSweepShort(t *testing.T) {
	rep := Config{Seed: 1, Events: 40, Stride: 3, Logf: t.Logf}.CrashSweep()
	report(t, rep)
}

func TestCrashSweepNoSync(t *testing.T) {
	// Without per-append fsync the lower bound weakens but every recovery
	// must still be a clean prefix of the issued events.
	rep := Config{Seed: 2, Events: 40, Stride: 5, NoSync: true, Logf: t.Logf}.CrashSweep()
	report(t, rep)
}

func TestCrashPointRepro(t *testing.T) {
	// The -at reproduction path exercises exactly one fault point.
	rep := Config{Seed: 1, Events: 40, At: 17}.CrashSweep()
	if rep.Points != 1 {
		t.Fatalf("At=17 ran %d points, want 1", rep.Points)
	}
	report(t, rep)
}

func TestEIOSweepShort(t *testing.T) {
	rep := Config{Seed: 3, Events: 40, Stride: 3, Logf: t.Logf}.EIOSweep()
	report(t, rep)
}

func TestRenameSweepShort(t *testing.T) {
	rep := Config{Seed: 4, Events: 120, Logf: t.Logf}.RenameSweep()
	report(t, rep)
}

func TestChaosShort(t *testing.T) {
	rep := Chaos(ChaosConfig{Seed: 5, Sessions: 4, OpsEach: 60, Logf: t.Logf})
	for _, f := range rep.Failures {
		t.Errorf("%s", f.String())
	}
	if rep.Ok() && rep.Metrics.WalAppends == 0 {
		t.Fatal("chaos run never reached the WAL")
	}
}

func TestGroupCommitSweepShort(t *testing.T) {
	rep := Config{Seed: 6, Events: 40, Stride: 3, Logf: t.Logf}.GroupCommitSweep()
	report(t, rep)
}

func TestGroupCommitPointRepro(t *testing.T) {
	// The -at reproduction path pins one fault point per sweep half.
	rep := Config{Seed: 6, Events: 40, At: 17}.GroupCommitSweep()
	if rep.Points < 1 || rep.Points > 2 {
		t.Fatalf("At=17 ran %d points, want 1 or 2 (one per sweep half)", rep.Points)
	}
	report(t, rep)
}

func TestFailureRepro(t *testing.T) {
	f := Failure{Mode: ModeCrash, Seed: 9, At: 41, Events: 90}
	want := "go run ./cmd/rttorture -mode crash -seed 9 -at 41 -events 90"
	if got := f.Repro(); got != want {
		t.Fatalf("Repro() = %q, want %q", got, want)
	}
}
