package torture

import (
	"fmt"
	"math/rand/v2"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	"rtc/internal/faultnet"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/replica"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
)

// ModePartition arms one network fault — a mid-frame cut, a silent frame
// drop, a corrupted byte, a slow-loris stall, or a one- or two-way
// partition — at every Stride-th fabric write op of a full
// client/primary/replica stack, and checks the wire invariants at each
// point.
const ModePartition Mode = "partition"

// The fabric endpoint labels. The server-side ends of accepted
// connections carry the listener's address as their label, so directions
// like {client → partPrimary} name exactly one flow.
const (
	partPrimary = "primary:1"
	partStandby = "standby:1"
)

// partScenario is one armed network fault family. hb enables the client
// heartbeat watchdog (the only detector for blackholed flows); promote
// marks the two-way isolation scenario that fails over to the standby
// mid-partition and then tries to walk the client back into the deposed
// primary.
type partScenario struct {
	name    string
	fault   faultnet.Fault
	hb      bool
	promote bool
}

func partScenarios() []partScenario {
	dir := func(from, to string) faultnet.Direction { return faultnet.Direction{From: from, To: to} }
	part := func(dirs ...faultnet.Direction) faultnet.Fault {
		return faultnet.Fault{Kind: faultnet.FaultPartition, Dirs: dirs}
	}
	return []partScenario{
		{name: "cut", fault: faultnet.Fault{Kind: faultnet.FaultCut}},
		{name: "drop", fault: faultnet.Fault{Kind: faultnet.FaultDrop}},
		{name: "corrupt", fault: faultnet.Fault{Kind: faultnet.FaultCorrupt}},
		{name: "stall", fault: faultnet.Fault{Kind: faultnet.FaultStall}, hb: true},
		{name: "bh-client-to-primary", fault: part(dir("client", partPrimary)), hb: true},
		{name: "bh-primary-to-client", fault: part(dir(partPrimary, "client")), hb: true},
		{name: "bh-replica-to-primary", fault: part(dir("replica", partPrimary)), hb: true},
		{name: "bh-primary-to-replica", fault: part(dir(partPrimary, "replica")), hb: true},
		{name: "isolate-primary", fault: part(dir("*", partPrimary), dir(partPrimary, "*")), hb: true, promote: true},
	}
}

// PartitionSweep runs the network-fault variant of the crash sweep: a
// full stack — primary server behind netserve, a live replica tailing the
// WAL and serving as hot standby, and a client with both addresses —
// wired entirely through a seeded faultnet fabric. A probe run with no
// fault armed measures the fabric's total write-op count; the sweep then
// arms one seeded fault at every Stride-th op and checks, at each point:
//
//   - durability: no write the client saw acknowledged (a Flush that
//     succeeded on an unbroken primary connection) is ever lost —
//     acked ≤ SamplesApplied ≤ samples sent;
//   - fencing: when the primary is isolated and the standby promoted, a
//     client that saw the new epoch can never be recaptured by the
//     deposed primary once the partition heals (StaleRejected ≥ 1);
//   - conservation on both sides of the cut: QueriesIn ==
//     QueriesAccounted on the primary and on the standby;
//   - subscription cursors stay strictly monotone across every
//     stall-induced resume and failover re-attach;
//   - post-heal liveness: after Heal the client reaches the acting
//     primary, a flush and a query succeed, the replica converges to the
//     primary's WAL tip, and the replication durability watermark
//     catches up.
//
// Reader-visible malformed byte streams (cut prefixes, post-drop
// desyncs, corrupted frames) are captured into Report.Streams as seed
// material for rtwire's frame fuzzer (cmd/rttorture -corpus).
func (c Config) PartitionSweep() *Report {
	c.defaults()
	rep := &Report{}
	total, _, fail := c.partitionPoint(0)
	if fail != nil {
		fail.Detail = "faultless probe run: " + fail.Detail
		rep.Points++
		rep.Failures = append(rep.Failures, *fail)
		return rep
	}
	start, stride := uint64(1), uint64(c.Stride)
	if c.At > 0 {
		start, stride = c.At, 1
	}
	for at := start; at <= total; at += stride {
		rep.Points++
		_, stream, fail := c.partitionPoint(at)
		if fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if len(stream) > 0 && len(rep.Streams) < 48 {
			if rep.Streams == nil {
				rep.Streams = make(map[string][]byte)
			}
			rep.Streams[fmt.Sprintf("seed%d-at%d", c.Seed, at)] = stream
		}
		if c.At > 0 {
			break
		}
	}
	if c.Logf != nil {
		c.Logf("partition sweep: seed=%d ops=%d points=%d recoveries=%d failures=%d streams=%d",
			c.Seed, total, rep.Points, rep.Recoveries, len(rep.Failures), len(rep.Streams))
	}
	return rep
}

// partitionPoint runs one full-stack workload with a network fault armed
// at fabric write op `at` (0: probe run, nothing armed). It returns the
// fabric's total op count and any malformed byte stream the fault left
// behind.
func (c Config) partitionPoint(at uint64) (ops uint64, stream []byte, fail *Failure) {
	ps := pointSeed(c.Seed, at)
	rng := rand.New(rand.NewPCG(ps, 0x6a09e667f3bcc909))
	scens := partScenarios()
	scen := scens[rng.IntN(len(scens))]

	fab := faultnet.NewFabric(ps)
	defer fab.Close()
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModePartition, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf("[%s] ", scen.name) + fmt.Sprintf(format, args...),
		}
	}
	fired := func() bool { f, _ := fab.Fired(); return f }

	// Primary: a full server (catalog, derivations, an alarm rule) behind
	// netserve on the fabric, with heartbeat-scaled timeouts so watchdogs
	// act within the point's lifetime.
	memP := faultfs.NewMem(ps)
	lp, err := wal.Open(c.walOptions(memP))
	if err != nil {
		return 0, nil, mkFail("primary Open: %v", err)
	}
	srv, err := server.New(chaosServerConfig(lp, 6, 64))
	if err != nil {
		lp.Close()
		return 0, nil, mkFail("primary server: %v", err)
	}
	srv.Start()
	ns := netserve.New(srv, netserve.Options{
		HeartbeatInterval: 40 * time.Millisecond,
		WriteTimeout:      150 * time.Millisecond,
		HandshakeTimeout:  500 * time.Millisecond,
		ReplBatch:         8, ReplWindow: 16, TailBuffer: 256,
		ReplStallTimeout: 300 * time.Millisecond,
	})
	pln, err := fab.Listen(partPrimary)
	if err != nil {
		srv.Stop()
		lp.Close()
		return 0, nil, mkFail("primary listen: %v", err)
	}
	go func() { _ = ns.Serve(pln) }()

	// Replica: tails the primary through its own fabric endpoint and
	// serves as the hot standby on a second fabric listener.
	memR := faultfs.NewMem(ps ^ 0x5bd1e995)
	rp, err := replica.Open(replica.Config{
		Primary: partPrimary,
		Dialer:  fab.Dialer("replica"),
		WAL: wal.Options{
			Dir: replDir, FS: memR, SegmentSize: c.SegmentSize,
			SnapshotEvery: c.SnapshotEvery, Sync: true,
			GroupWindow: c.GroupWindow,
		},
		Name:     "partition-follower",
		Catalog:  failoverCatalog(),
		Registry: rtdb.DeriveRegistry{"status": chaosDerive},
		Seed:     ps,

		DialTimeout:  150 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
		HeartbeatTimeout: 300 * time.Millisecond,
		HandshakeTimeout: 500 * time.Millisecond,
		WriteTimeout:     150 * time.Millisecond,
	})
	if err != nil {
		srv.Stop()
		ns.Close()
		lp.Close()
		return 0, nil, mkFail("replica Open: %v", err)
	}
	rp.Start()
	sln, err := fab.Listen(partStandby)
	if err != nil {
		srv.Stop()
		ns.Close()
		_ = rp.Close()
		lp.Close()
		return 0, nil, mkFail("standby listen: %v", err)
	}
	if _, err := rp.ServeOn(sln); err != nil {
		srv.Stop()
		ns.Close()
		_ = rp.Close()
		lp.Close()
		return 0, nil, mkFail("standby serve: %v", err)
	}

	// Arm before the first dial so handshake ops count toward the point.
	if at > 0 {
		fab.ArmAt(at, scen.fault)
	}
	healed := false
	heal := func() {
		if !healed {
			healed = true
			fab.Heal()
		}
	}
	finish := func(f *Failure) (uint64, []byte, *Failure) {
		return fab.Ops(), fab.MalformedStream(), f
	}
	var cl *client.Client
	var sub *client.Subscription
	teardown := func() {
		if sub != nil {
			_ = sub.Close()
		}
		if cl != nil {
			cl.Close()
		}
		ns.Close()
		srv.Stop()
	}

	hb := time.Duration(-1)
	if scen.hb {
		hb = 30 * time.Millisecond
	}
	clOpts := client.Options{
		Dialer:       fab.Dialer("client"),
		DialTimeout:  120 * time.Millisecond,
		CallTimeout:  500 * time.Millisecond,
		WriteTimeout: 150 * time.Millisecond,
		RetryAttempts: 6,
		RetryBackoff:  time.Millisecond, RetryBackoffMax: 10 * time.Millisecond,
		HeartbeatInterval: hb,
		Seed:              ps,
	}
	cl, err = client.Dial(partPrimary+","+partStandby, clOpts)
	if err != nil {
		// A fault that hit the handshake can defeat every dial retry (a
		// partition persists until Heal). Post-heal liveness still has to
		// hold: heal and dial again.
		if !fired() {
			teardown()
			_ = rp.Close()
			lp.Close()
			return finish(mkFail("client dial with no fault fired: %v", err))
		}
		heal()
		cl, err = client.Dial(partPrimary+","+partStandby, clOpts)
		if err != nil {
			teardown()
			_ = rp.Close()
			lp.Close()
			return finish(mkFail("post-heal client dial: %v", err))
		}
	}

	// One standing query rides the whole point; its cursors must stay
	// strictly monotone across every stall-induced resume and failover
	// re-attach. The drainer records the first regression it sees.
	sub, err = cl.Subscribe(client.SubSpec{
		Query: "status_q", Period: 3, Kind: deadline.Soft,
		Deadline: 1 << 20, MinUseful: 1, Buffer: 256,
	})
	if err != nil {
		if !fired() {
			teardown()
			_ = rp.Close()
			lp.Close()
			return finish(mkFail("subscribe with no fault fired: %v", err))
		}
		heal()
		sub, err = cl.Subscribe(client.SubSpec{
			Query: "status_q", Period: 3, Kind: deadline.Soft,
			Deadline: 1 << 20, MinUseful: 1, Buffer: 256,
		})
		if err != nil {
			teardown()
			_ = rp.Close()
			lp.Close()
			return finish(mkFail("post-heal subscribe: %v", err))
		}
	}
	var cursorRegress string
	var lastCursor uint64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for p := range sub.Pushes() {
			if p.Cursor <= lastCursor && cursorRegress == "" {
				cursorRegress = fmt.Sprintf("cursor %d after %d", p.Cursor, lastCursor)
			}
			if p.Cursor > lastCursor {
				lastCursor = p.Cursor
			}
		}
	}()

	// Drive the workload. A sample batch counts as acked only when a
	// Flush succeeds on the same unbroken connection generation that
	// carried the batch, and that connection is to the primary — the
	// exact set of writes the client may rely on.
	acked, totalSent, pending := 0, 0, 0
	pendingGen := cl.Stats.Redials.Load()
	syncGen := func() {
		if g := cl.Stats.Redials.Load(); g != pendingGen {
			pending, pendingGen = 0, g
		}
	}
	flushPending := func() bool {
		syncGen()
		if pending == 0 {
			return false
		}
		gen := pendingGen
		if err := cl.Flush(); err == nil &&
			cl.Stats.Redials.Load() == gen && cl.Role() == rtwire.RolePrimary {
			acked += pending
			pending = 0
			return true
		}
		syncGen()
		pending = 0
		pendingGen = cl.Stats.Redials.Load()
		return false
	}

	images := []string{"temp", "press"}
	postFault := 0
	for i := 0; i < c.Events; i++ {
		if fired() {
			if postFault++; postFault > 8 {
				break
			}
		}
		syncGen()
		if err := cl.InjectSample(images[i%2], fmt.Sprintf("%d", 15+i%12)); err == nil {
			totalSent++
			if g := cl.Stats.Redials.Load(); g == pendingGen {
				pending++
			} else {
				pending, pendingGen = 0, g
			}
		}
		_ = srv.Tick(1)
		if i%5 == 4 {
			_, _ = cl.Query(client.Query{
				Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
			})
		}
		if i%4 == 3 && flushPending() && !fired() {
			// Lockstep pre-fault so the replica's position is pinned when
			// the fault lands.
			target, start := lp.Seq(), time.Now()
			for !rp.WaitSeq(target, 50*time.Millisecond) {
				if fired() {
					break
				}
				if time.Since(start) > 3*time.Second {
					teardown()
					_ = rp.Close()
					lp.Close()
					return finish(mkFail("replica stalled at %d (want %d) with no fault", rp.Seq(), target))
				}
			}
		}
	}

	if scen.promote && fired() && !healed {
		fail = c.partitionPromote(fab, cl, rp, srv, heal, mkFail)
	} else {
		fail = c.partitionRideOut(fab, cl, rp, srv, ns, lp, heal, mkFail,
			&acked, &pending, &pendingGen, totalSent, flushPending)
	}

	// Teardown order mirrors production: client first, then the serving
	// layers, then the logs.
	if sub != nil {
		_ = sub.Close()
	}
	<-subDone
	if fail == nil && cursorRegress != "" {
		fail = mkFail("subscription cursor regressed: %s", cursorRegress)
	}
	cl.Close()
	ns.Close()
	srv.Stop()
	if scen.promote && rp.Epoch() >= 2 {
		// Promote hands the log to the caller.
		nl := rp.Log()
		_ = rp.Close()
		if nl != nil {
			_ = nl.Close()
		}
	} else {
		_ = rp.Close()
	}
	lp.Close()
	return finish(fail)
}

// partitionRideOut is the common back half of a fault point: heal, reach
// the primary again, and check durability, conservation, convergence,
// and the durability watermark.
func (c Config) partitionRideOut(
	fab *faultnet.Fabric, cl *client.Client, rp *replica.Replica,
	srv *server.Server, ns *netserve.Server, lp *wal.Log,
	heal func(), mkFail func(string, ...any) *Failure,
	acked, pending *int, pendingGen *uint64, totalSent int, flushPending func() bool,
) *Failure {
	heal()

	// Post-heal liveness: the client must reach the acting primary and
	// get a flush through. A firm query bounces a standby connection
	// (read-only reject → rotate), so retrying both converges. The loops
	// below re-heal on every pass: a fault armed at an op the drive
	// phase never reached fires during this phase's own writes, after
	// the first heal.
	dl := time.Now().Add(5 * time.Second)
	flushed := false
	for time.Now().Before(dl) {
		fab.Heal()
		if cl.Role() != rtwire.RolePrimary {
			_, _ = cl.Query(client.Query{
				Query: "status_q", Kind: deadline.Firm, Deadline: 1 << 20, MinUseful: 1,
			})
		}
		if g := cl.Stats.Redials.Load(); g != *pendingGen {
			*pending, *pendingGen = 0, g
		}
		gen := *pendingGen
		if err := cl.Flush(); err == nil &&
			cl.Stats.Redials.Load() == gen && cl.Role() == rtwire.RolePrimary {
			*acked += *pending
			*pending = 0
			flushed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !flushed {
		return mkFail("post-heal flush never reached the primary")
	}
	fab.Heal()
	if _, err := cl.Query(client.Query{
		Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
	}); err != nil {
		return mkFail("post-heal query: %v", err)
	}

	// Durability and conservation on the primary.
	if err := srv.Barrier(); err != nil {
		return mkFail("post-heal barrier: %v", err)
	}
	m := srv.Metrics.Snapshot()
	if int(m.SamplesApplied) < *acked {
		return mkFail("lost acked writes: %d acked, %d applied", *acked, m.SamplesApplied)
	}
	if int(m.SamplesIn) > totalSent {
		return mkFail("duplicated writes: %d sent, %d arrived", totalSent, m.SamplesIn)
	}
	if m.QueriesIn != m.QueriesAccounted() {
		return mkFail("primary conservation broken: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}

	// The replica converges to the primary's WAL tip and the replication
	// durability watermark follows.
	seq := lp.Seq()
	start := time.Now()
	for !rp.WaitSeq(seq, 50*time.Millisecond) {
		fab.Heal()
		if time.Since(start) > 5*time.Second {
			return mkFail("replica never converged: at %d, primary at %d", rp.Seq(), seq)
		}
	}
	dl = time.Now().Add(5 * time.Second)
	for ns.ReplDurable() < seq {
		fab.Heal()
		if time.Now().After(dl) {
			return mkFail("durability watermark stuck at %d, primary at %d", ns.ReplDurable(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Conservation on the standby side of the cut.
	ms := rp.Metrics.Snapshot()
	if ms.QueriesIn != ms.QueriesAccounted() {
		return mkFail("standby conservation broken: in=%d accounted=%d", ms.QueriesIn, ms.QueriesAccounted())
	}
	return nil
}

// partitionPromote is the failover half: with the primary isolated, the
// standby is promoted and the client must follow it — and once the
// partition heals, the deposed primary must never recapture a client
// that saw the new epoch.
func (c Config) partitionPromote(
	fab *faultnet.Fabric, cl *client.Client, rp *replica.Replica,
	srv *server.Server,
	heal func(), mkFail func(string, ...any) *Failure,
) *Failure {
	epoch, err := rp.Promote()
	if err != nil {
		return mkFail("promote during partition: %v", err)
	}
	if epoch < 2 {
		return mkFail("promotion left epoch at %d", epoch)
	}

	// The client must find the promoted standby and learn the new epoch.
	dl := time.Now().Add(5 * time.Second)
	for cl.Epoch() < epoch {
		if time.Now().After(dl) {
			return mkFail("client never saw epoch %d (at %d)", epoch, cl.Epoch())
		}
		_, _ = cl.Query(client.Query{
			Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
		})
		time.Sleep(time.Millisecond)
	}

	// Replicated durability across the failover: everything the client
	// heard as replication-durable must be on the promoted standby.
	if w := cl.Stats.MaxPrimarySeq.Load(); rp.Seq() < w {
		return mkFail("promoted standby at %d below durable watermark %d", rp.Seq(), w)
	}

	// Heal, then force the client back through the deposed primary: block
	// the standby path and cut the live connection, so the ring walk must
	// try the old primary — whose stale epoch has to be refused.
	heal()
	fab.PartitionNow(faultnet.Direction{From: "client", To: partStandby})
	fab.CutAll("client", partStandby)
	before := cl.Stats.StaleRejected.Load()
	_, _ = cl.Query(client.Query{
		Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
	})
	if cl.Stats.StaleRejected.Load() == before {
		return mkFail("deposed primary recaptured the client: no stale rejection recorded")
	}
	if cl.Epoch() < epoch {
		return mkFail("client epoch regressed to %d after meeting the deposed primary", cl.Epoch())
	}

	// Lift the forced detour: the promoted standby must serve again.
	fab.Heal()
	dl = time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Query(client.Query{
			Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
		}); err == nil {
			break
		}
		if time.Now().After(dl) {
			return mkFail("post-heal query never reached the promoted standby")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Conservation still holds on both sides of the healed cut.
	if err := srv.Barrier(); err != nil {
		return mkFail("deposed primary barrier: %v", err)
	}
	m := srv.Metrics.Snapshot()
	if m.QueriesIn != m.QueriesAccounted() {
		return mkFail("deposed primary conservation broken: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}
	ms := rp.Metrics.Snapshot()
	if ms.QueriesIn != ms.QueriesAccounted() {
		return mkFail("promoted standby conservation broken: in=%d accounted=%d", ms.QueriesIn, ms.QueriesAccounted())
	}
	return nil
}
