package torture

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"strconv"
	"sync"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/server"
	"rtc/internal/timeseq"
)

// ChaosConfig parameterizes one chaos run: N concurrent sessions with
// seeded but racing op streams against one server whose WAL sits on a
// fault-injecting filesystem, so transient EIO and short writes land in
// the middle of the apply loop.
type ChaosConfig struct {
	Seed     uint64
	Sessions int // default 8
	OpsEach  int // ops per session (default 150)
	// QueueDepth is kept small (default 8) so backpressure engages.
	QueueDepth int
	// FaultEvery injects a transient write fault (alternating EIO and
	// torn short write) every so many data writes (default 25).
	FaultEvery uint64
	Logf       func(format string, args ...any)
}

func (c *ChaosConfig) defaults() {
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.OpsEach <= 0 {
		c.OpsEach = 150
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.FaultEvery == 0 {
		c.FaultEvery = 25
	}
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	Metrics         server.MetricsSnapshot
	FaultsInjected  uint64
	RecoveredEvents uint64
	Failures        []Failure
}

// Ok reports a clean run.
func (r *ChaosReport) Ok() bool { return len(r.Failures) == 0 }

func chaosDerive(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func chaosServerConfig(l *wal.Log, sessions, depth int) server.Config {
	return server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "22"},
			Images: []*rtdb.ImageObject{
				{Name: "temp", Period: 5},
				{Name: "press", Period: 3},
			},
			Derived: []*rtdb.DerivedObject{{
				Name: "status", Sources: []string{"temp", "limit"}, Derive: chaosDerive,
			}},
		},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
			"temp_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest("temp"); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			},
		},
		Registry: rtdb.DeriveRegistry{"status": chaosDerive},
		Rules: []rtdb.Rule{{
			Name: "alarm", On: "sample:temp", Mode: rtdb.Immediate,
			If:   func(db *rtdb.DB, e rtdb.Event) bool { return e.Attr["value"] > "24" },
			Then: func(db *rtdb.DB, e rtdb.Event) {},
		}},
		Sessions:   sessions,
		QueueDepth: depth,
		Log:        l,
	}
}

// Chaos runs the server chaos mode: seeded racing sessions mixing samples,
// deadline-carrying queries (including the firm boundary deadline ==
// EvalCost), as-of reads, and idle ticks, while the WAL underneath them
// takes transient write faults mid-apply-loop. Afterwards it asserts the
// conservation laws — every query accounted exactly once, every accepted
// sample applied, every periodic invocation tallied — and that the WAL
// survived: never poisoned, recoverable, with exactly WalAppends events,
// and a fresh server rebuildable from the recovered state.
func Chaos(cfg ChaosConfig) *ChaosReport {
	cfg.defaults()
	rep := &ChaosReport{}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, Failure{
			Mode: ModeChaos, Seed: cfg.Seed, Events: cfg.Sessions * cfg.OpsEach,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	mem := faultfs.NewMem(pointSeed(cfg.Seed, 0xc4a05))
	// Schedule transient write faults across the whole run, alternating
	// plain EIO and torn short writes. Only data writes are targeted, so
	// the log heals every one of them (fsync faults would rightly poison).
	maxWrites := uint64(cfg.Sessions*cfg.OpsEach*2 + 1024)
	for k, i := cfg.FaultEvery, 0; k < maxWrites; k, i = k+cfg.FaultEvery, i+1 {
		if i%2 == 0 {
			mem.FailWrite(k)
		} else {
			mem.TearWrite(k)
		}
	}

	l, err := wal.Open(wal.Options{Dir: walDir, FS: mem, SegmentSize: 4096, SnapshotEvery: 64, Sync: true})
	if err != nil {
		fail("Open: %v", err)
		return rep
	}
	s, err := server.New(chaosServerConfig(l, cfg.Sessions, cfg.QueueDepth))
	if err != nil {
		fail("server.New: %v", err)
		return rep
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "watch", Query: "status_q", Period: 7,
		Kind: deadline.Firm, Deadline: 5, MinUseful: 1,
	}); err != nil {
		fail("RegisterPeriodic: %v", err)
		return rep
	}
	s.Start()

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(pointSeed(cfg.Seed, uint64(id)+1), 0x2545f4914f6cdd1d))
			c := s.Session(id)
			for op := 0; op < cfg.OpsEach; op++ {
				// A random yield shakes the interleaving between sessions
				// so repeated runs explore different apply orders.
				if rng.IntN(8) == 0 {
					runtime.Gosched()
				}
				switch r := rng.IntN(100); {
				case r < 55:
					img := "temp"
					if rng.IntN(3) == 0 {
						img = "press"
					}
					if err := c.InjectSample(img, strconv.Itoa(15+rng.IntN(15))); err != nil && err != server.ErrBackpressure {
						errs <- fmt.Errorf("session %d: inject: %w", id, err)
						return
					}
				case r < 70:
					// Firm queries, including the boundary envelope where
					// the relative deadline equals EvalCost (provably late).
					d := 1 + rng.IntN(20)
					_, err := c.Query(server.QueryRequest{
						Query: "status_q", Candidate: "ok",
						Kind: deadline.Firm, Deadline: timeseq.Time(d), MinUseful: 1,
					})
					if err != nil && err != server.ErrBackpressure {
						errs <- fmt.Errorf("session %d: firm query: %w", id, err)
						return
					}
				case r < 80:
					_, err := c.Query(server.QueryRequest{
						Query: "temp_q",
						Kind:  deadline.Soft, Deadline: timeseq.Time(2 + rng.IntN(8)), MinUseful: uint64(rng.IntN(5)),
						U: deadline.Hyperbolic(8, 10),
					})
					if err != nil && err != server.ErrBackpressure {
						errs <- fmt.Errorf("session %d: soft query: %w", id, err)
						return
					}
				case r < 90:
					_, _ = s.ValueAsOf("temp", s.Now()/2)
					_ = s.Metrics.Snapshot()
				default:
					if err := s.Tick(uint64(1 + rng.IntN(3))); err != nil {
						errs <- fmt.Errorf("session %d: tick: %w", id, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fail("%v", err)
	}
	for i := 0; i < cfg.Sessions; i++ {
		if err := s.Session(i).Flush(); err != nil {
			fail("flush session %d: %v", i, err)
		}
	}
	if err := s.Barrier(); err != nil {
		fail("barrier: %v", err)
	}
	m := s.Metrics.Snapshot()
	s.Stop()
	rep.Metrics = m
	rep.FaultsInjected = mem.Injected()

	// Conservation laws: nothing is silently dropped, under faults or not.
	if m.QueriesIn != m.QueriesAccounted() {
		fail("query conservation violated: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}
	if m.SamplesIn != m.SamplesApplied {
		fail("sample conservation violated: in=%d applied=%d", m.SamplesIn, m.SamplesApplied)
	}
	if m.PeriodicIssued != m.PeriodicHit+m.PeriodicMiss {
		fail("periodic conservation violated: %d != %d+%d", m.PeriodicIssued, m.PeriodicHit, m.PeriodicMiss)
	}
	if m.QueriesIn == 0 || m.SamplesIn == 0 {
		fail("chaos run did no work: %+v", m)
	}

	// The WAL took mid-apply-loop faults and must have healed every one:
	// transient write errors cost individual records (counted as
	// WalErrors), never the log.
	if err := l.Err(); err != nil {
		fail("WAL poisoned by transient faults: %v", err)
	}
	st := l.Stats()
	if rep.FaultsInjected > 0 && m.WalErrors == 0 && st.SnapshotErrors == 0 {
		fail("%d faults injected but none surfaced in WalErrors or SnapshotErrors", rep.FaultsInjected)
	}
	if err := l.Close(); err != nil {
		fail("close WAL: %v", err)
	}

	// Recovery: exactly the successfully appended events come back, and a
	// fresh server rebuilds from them (load-or-recover).
	l2, err := wal.Open(wal.Options{Dir: walDir, FS: mem, SegmentSize: 4096, SnapshotEvery: 64})
	if err != nil {
		fail("recovery Open: %v", err)
		return rep
	}
	defer l2.Close()
	rep.RecoveredEvents = l2.State().Events
	if rep.RecoveredEvents != m.WalAppends {
		fail("WAL conservation violated: recovered %d events, %d appends acknowledged", rep.RecoveredEvents, m.WalAppends)
	}
	s2, err := server.New(chaosServerConfig(l2, 1, cfg.QueueDepth))
	if err != nil {
		fail("server rebuild from recovered WAL: %v", err)
		return rep
	}
	if s2.Now() != l2.State().LastAt {
		fail("rebuilt server clock %d != recovered LastAt %d", s2.Now(), l2.State().LastAt)
	}
	if cfg.Logf != nil {
		cfg.Logf("chaos: seed=%d sessions=%d ops=%d faults=%d samples=%d queries=%d wal_appends=%d wal_errors=%d recovered=%d",
			cfg.Seed, cfg.Sessions, cfg.OpsEach, rep.FaultsInjected,
			m.SamplesIn, m.QueriesIn, m.WalAppends, m.WalErrors, rep.RecoveredEvents)
	}
	return rep
}
