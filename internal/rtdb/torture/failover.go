package torture

import (
	"errors"
	"fmt"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/replica"
	"rtc/internal/rtdb/server"
)

// ModeFailover kills the primary at every WAL fault point with a live
// replica attached, then promotes the replica and checks the replicated
// recovery invariant.
const ModeFailover Mode = "failover"

// replDir is the replica's own WAL directory (on its own filesystem — the
// primary's power cut must not touch it).
const replDir = "rwal"

func failoverCatalog() rtdb.Catalog {
	return rtdb.Catalog{
		"status_q": func(v *rtdb.View) []rtdb.Value {
			if s, ok := v.DeriveNow("status"); ok {
				return []rtdb.Value{s}
			}
			return nil
		},
	}
}

// FailoverSweep runs the replicated variant of the crash sweep: a primary
// WAL behind a live rtwire replication stream, a replica acking every
// event, and a power cut armed at every Stride-th mutating operation of
// the primary's filesystem. At each kill point the sweep then:
//
//   - reads from the hot standby during the outage (a soft query must be
//     served degraded, a firm query refused read-only) and checks the
//     standby's conservation law QueriesIn == QueriesAccounted,
//   - promotes the replica and requires the fencing epoch to advance,
//   - asserts the replicated durability invariant acked ≤ n ≤ acked+1
//     (with per-event acks the replica can never trail an acked write,
//     and double-apply would push n past acked+1),
//   - deep-compares the promoted state against the reference prefix, and
//   - appends past the failover to prove the promoted log is live.
func (c Config) FailoverSweep() *Report {
	c.defaults()
	events := Workload(c.Seed, c.Events)
	rep := &Report{}
	start, stride := uint64(1), uint64(c.Stride)
	if c.At > 0 {
		start, stride = c.At, 0
	}
	for at := start; ; at += stride {
		done, fail := c.failoverPoint(events, at)
		if done {
			break
		}
		rep.Points++
		if fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if c.At > 0 {
			break
		}
	}
	if c.Logf != nil {
		c.Logf("failover sweep: seed=%d points=%d recoveries=%d failures=%d",
			c.Seed, rep.Points, rep.Recoveries, len(rep.Failures))
	}
	return rep
}

// failoverPoint runs one workload with a primary power cut armed at
// mutating op `at` and a replica streaming the WAL. done reports that `at`
// lies beyond the workload (sweep complete).
func (c Config) failoverPoint(events []wal.Event, at uint64) (done bool, fail *Failure) {
	memP := faultfs.NewMem(pointSeed(c.Seed, at))
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeFailover, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(memP),
		}
	}

	lp, err := wal.Open(c.walOptions(memP))
	if err != nil {
		return false, mkFail("primary Open: %v", err)
	}
	// The server is only the replication sender's shell here: the workload
	// is appended directly to the WAL so the kill point is deterministic in
	// filesystem ops, exactly as in the crash sweep.
	srv, err := server.New(server.Config{Log: lp})
	if err != nil {
		lp.Close()
		return false, mkFail("primary server shell: %v", err)
	}
	nopt := netserve.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		ReplBatch:         8, ReplWindow: 32, TailBuffer: 256,
	}
	if c.Shards > 0 {
		// Sharded rerun: the primary poses as one listener of an N-wide
		// deployment. The replica must ignore the placement announcement
		// and fail over exactly as in the unsharded sweep.
		nopt.Shard, nopt.Shards = c.Victim%c.Shards, c.Shards
	}
	ns := netserve.New(srv, nopt)
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		srv.Stop()
		return false, mkFail("primary listen: %v", err)
	}

	memR := faultfs.NewMem(pointSeed(c.Seed, at) ^ 0x5bd1e995)
	rp, err := replica.Open(replica.Config{
		Primary: addr.String(),
		WAL: wal.Options{
			Dir: replDir, FS: memR, SegmentSize: c.SegmentSize,
			SnapshotEvery: c.SnapshotEvery, Sync: true,
			GroupWindow: c.GroupWindow,
		},
		Name:     "torture-follower",
		Catalog:  failoverCatalog(),
		Registry: rtdb.DeriveRegistry{"status": chaosDerive},
		Seed:     pointSeed(c.Seed, at),

		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		srv.Stop()
		ns.Close()
		return false, mkFail("replica Open: %v", err)
	}
	rp.Start()
	standbyAddr, err := rp.Listen("127.0.0.1:0")
	if err != nil {
		srv.Stop()
		ns.Close()
		_ = rp.Close()
		return false, mkFail("standby listen: %v", err)
	}

	// Drive the workload, waiting for the replica's ack after every
	// successful append: the sweep's `acked` therefore equals the replica's
	// sequence at every step, making the kill-point outcome deterministic.
	memP.CrashAt(at)
	acked := 0
	for _, e := range events {
		if err := lp.Append(e); err != nil {
			break
		}
		acked++
		if !rp.WaitSeq(uint64(acked), 10*time.Second) {
			srv.Stop()
			ns.Close()
			_ = rp.Close()
			return false, mkFail("replica never reached acked seq %d (stuck at %d)", acked, rp.Seq())
		}
	}
	if !memP.Dead() {
		// The fault point lies beyond the workload's op count.
		srv.Stop()
		ns.Close()
		_ = rp.Close()
		lp.Close()
		return true, nil
	}
	memP.Crash()
	srv.Stop()
	ns.Close()

	// The outage window: the standby must serve degraded reads and refuse
	// firm ones, with its conservation law intact.
	cl, err := client.Dial(standbyAddr.String(), client.Options{
		RetryAttempts: -1, HeartbeatInterval: -1, Seed: pointSeed(c.Seed, at),
	})
	if err != nil {
		_ = rp.Close()
		return false, mkFail("standby dial during outage: %v", err)
	}
	if _, err := cl.Query(client.Query{
		Query: "status_q", Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
	}); err != nil {
		cl.Close()
		_ = rp.Close()
		return false, mkFail("standby refused a soft query: %v", err)
	}
	if _, err := cl.Query(client.Query{
		Query: "status_q", Kind: deadline.Firm, Deadline: 1 << 20, MinUseful: 1,
	}); !errors.Is(err, client.ErrReadOnly) {
		cl.Close()
		_ = rp.Close()
		return false, mkFail("standby served a firm query during outage (err=%v)", err)
	}
	cl.Close()
	ms := rp.Metrics.Snapshot()
	if ms.QueriesIn != ms.QueriesAccounted() {
		_ = rp.Close()
		return false, mkFail("standby conservation broken: in=%d accounted=%d", ms.QueriesIn, ms.QueriesAccounted())
	}
	if ms.Degraded == 0 {
		_ = rp.Close()
		return false, mkFail("soft query was served but not counted degraded")
	}

	// Failover: promote, fence, and check the replicated recovery invariant.
	epoch, err := rp.Promote()
	if err != nil {
		_ = rp.Close()
		return false, mkFail("promote: %v", err)
	}
	if epoch < 2 {
		_ = rp.Close()
		return false, mkFail("promotion left epoch at %d", epoch)
	}
	n := int(rp.Seq())
	switch {
	case n < acked:
		_ = rp.Close()
		return false, mkFail("replica has %d events but %d were acked (lost acked writes)", n, acked)
	case n > acked+1:
		_ = rp.Close()
		return false, mkFail("replica has %d events but only %d were issued (double apply)", n, acked+1)
	}
	nl := rp.Log()
	want := Reference(events[:n])
	if d := want.Diff(nl.State()); d != "" {
		_ = rp.Close()
		return false, mkFail("promoted state != reference prefix %d: %s", n, d)
	}

	// The promoted log is live: an append past the failover lands.
	if n >= 2 { // catalog prologue replicated, image exists
		post := wal.Sample(want.LastAt+1, "temp", "post-failover")
		if err := nl.Append(post); err != nil {
			_ = rp.Close()
			return false, mkFail("append after promotion: %v", err)
		}
	}
	_ = rp.Close() // promoted: leaves the log to us
	if err := nl.Close(); err != nil {
		return false, mkFail("close promoted log: %v", err)
	}

	// Fencing durability: the bumped epoch survives a restart of the node.
	l2, err := wal.Open(wal.Options{
		Dir: replDir, FS: memR, SegmentSize: c.SegmentSize,
		SnapshotEvery: c.SnapshotEvery, Sync: true,
		GroupWindow: c.GroupWindow,
	})
	if err != nil {
		return false, mkFail("reopen promoted log: %v", err)
	}
	defer l2.Close()
	if got := l2.Epoch(); got != epoch {
		return false, mkFail("promoted epoch %d not persisted (reopened as %d)", epoch, got)
	}
	return false, nil
}
