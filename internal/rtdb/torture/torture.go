// Package torture crash-tortures the rtdbd durability layer: it drives the
// write-ahead log (internal/rtdb/log) over the injectable filesystem
// (internal/faultfs) through seeded workloads, kills it at every Nth
// mutating operation across a sweep of fault points — power cuts with torn
// and dropped unsynced writes, transient EIO, short writes, rename
// failures — then recovers and asserts the recovery invariant:
//
//	recovered state ≡ reference(events[:n])  (deep-equal)
//	acked ≤ n ≤ acked+1                      (with per-append fsync)
//
// where acked counts the appends that returned nil. Every append the log
// acknowledged survives the crash; at most the single in-flight event may
// additionally appear; nothing else — no reordering, no partial applies, no
// resurrection of healed frames. Recovery is additionally checked to be
// idempotent (a second Open deep-equals the first) and live (a
// post-recovery append lands).
//
// Everything is deterministic from a seed: a failing fault point prints a
// one-command reproduction (cmd/rttorture -mode M -seed S -at K) and
// carries the post-crash segment images so they can seed the log package's
// segment fuzz corpus.
package torture

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"rtc/internal/faultfs"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
)

// Mode names one fault family of the sweep.
type Mode string

// The sweep modes. ModeAll is accepted by cmd/rttorture and fans out to
// every family plus the server chaos run.
const (
	ModeCrash  Mode = "crash"  // op-count power cut; unsynced data dropped or torn
	ModeEIO    Mode = "eio"    // transient EIO / short write on one data write
	ModeRename Mode = "rename" // one snapshot rename fails
	ModeChaos  Mode = "chaos"  // concurrent server under mid-apply-loop faults
)

// Config parameterizes one sweep.
type Config struct {
	// Seed drives the workload and every per-point crash materialization.
	Seed uint64
	// Events is the workload length (default 90).
	Events int
	// Stride tests every Stride-th fault point (default 1: all of them).
	Stride int
	// At, when nonzero, tests exactly one fault point — the reproduction
	// path for a failure printed by a sweep.
	At uint64
	// Shards is the deployment width of the shard sweep (default 4).
	Shards int
	// Victim selects which shard's WAL takes the power cut when At pins a
	// single shard-sweep fault point; the full sweep rotates every victim.
	Victim int
	// SegmentSize (default 2048) is kept small so rotation is exercised.
	SegmentSize int64
	// SnapshotEvery (default 32 appends) keeps snapshot + rename traffic
	// inside the fault window.
	SnapshotEvery uint64
	// NoSync disables per-append fsync; the invariant then weakens to
	// "recovered state is a prefix of the issued events" (0 ≤ n ≤ issued).
	NoSync bool
	// GroupWindow, when > 0, enables leader-based group commit on every WAL
	// the sweep opens (wal.Options.GroupWindow): appends batch their fsyncs
	// behind a commit window instead of paying one each.
	GroupWindow time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Events <= 0 {
		c.Events = 90
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 2048
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 32
	}
}

// Failure is one fault point whose recovery violated the invariant.
type Failure struct {
	Mode   Mode
	Seed   uint64
	At     uint64 // fault point: mutating-op / write / rename index
	Events int
	Victim int // shard whose WAL took the cut (shard mode only)
	Detail string
	// Segments holds the post-crash byte images of the WAL directory's
	// files, exportable as fuzz corpus seeds (cmd/rttorture -corpus).
	Segments map[string][]byte
}

// Repro renders the one-command reproduction for this failure.
func (f Failure) Repro() string {
	s := fmt.Sprintf("go run ./cmd/rttorture -mode %s -seed %d -at %d -events %d", f.Mode, f.Seed, f.At, f.Events)
	if f.Mode == ModeShard {
		s += fmt.Sprintf(" -victim %d", f.Victim)
	}
	return s
}

func (f Failure) String() string {
	return fmt.Sprintf("FAIL mode=%s seed=%d at=%d: %s\n  repro: %s", f.Mode, f.Seed, f.At, f.Detail, f.Repro())
}

// Report aggregates one or more sweeps.
type Report struct {
	Points     int // fault points exercised
	Recoveries int // recoveries that passed every invariant
	Failures   []Failure
	// Streams holds reader-visible malformed byte streams the network
	// fault sweep captured (cut prefixes, post-drop desyncs, corrupted
	// frames), keyed by their fault point — exportable as rtwire
	// frame-fuzzer corpus seeds (cmd/rttorture -corpus). Collected on
	// passing points too: a stream the codec survived is still a seed.
	Streams map[string][]byte
}

// Merge folds another report into r.
func (r *Report) Merge(o *Report) {
	r.Points += o.Points
	r.Recoveries += o.Recoveries
	r.Failures = append(r.Failures, o.Failures...)
	for k, v := range o.Streams {
		if r.Streams == nil {
			r.Streams = make(map[string][]byte)
		}
		r.Streams[k] = v
	}
}

// Ok reports a clean sweep.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

const walDir = "wal"

// Workload generates the seeded event sequence a sweep replays at every
// fault point: a catalog prologue, then a mix of samples across three
// image objects, invariant overwrites, rule firings, and query issues with
// randomized §4.1 deadline envelopes.
func Workload(seed uint64, n int) []wal.Event {
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	images := []string{"temp", "press", "flow"}
	events := []wal.Event{
		wal.Invariant("limit", "22"),
		wal.Image("temp", 5),
		wal.Image("press", 3),
		wal.Image("flow", 7),
		wal.Derived("status", "temp", "limit"),
	}
	at := timeseq.Time(0)
	for i := 0; i < n; i++ {
		at += timeseq.Time(rng.IntN(3))
		switch rng.IntN(12) {
		case 0:
			events = append(events, wal.Firing(at, "alarm"))
		case 1:
			events = append(events, wal.Query(at, fmt.Sprintf("s%d", rng.IntN(4)), "status_q", "ok",
				uint64(rng.IntN(3)), uint64(rng.IntN(8)), uint64(rng.IntN(4))))
		case 2:
			events = append(events, wal.Invariant("limit", fmt.Sprintf("%d", 20+rng.IntN(5))))
		default:
			events = append(events, wal.Sample(at, images[rng.IntN(len(images))], fmt.Sprintf("v%d", i)))
		}
	}
	return events
}

// Reference replays events into a fresh state — the ground truth every
// recovery is compared against.
func Reference(events []wal.Event) *wal.State {
	st := wal.NewState()
	for _, e := range events {
		if err := st.Apply(e); err != nil {
			panic(fmt.Sprintf("torture: reference workload invalid: %v", err))
		}
	}
	return st
}

// pointSeed mixes the sweep seed with a fault point so each point explores
// a different crash materialization while staying reproducible.
func pointSeed(seed, at uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15*(at+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func (c Config) walOptions(fs faultfs.FS) wal.Options {
	return wal.Options{
		Dir: walDir, FS: fs,
		SegmentSize:   c.SegmentSize,
		SnapshotEvery: c.SnapshotEvery,
		Sync:          !c.NoSync,
		GroupWindow:   c.GroupWindow,
	}
}

// dumpSegments snapshots the WAL directory's current file images.
func dumpSegments(mem *faultfs.Mem) map[string][]byte {
	out := map[string][]byte{}
	names, err := mem.ReadDir(walDir)
	if err != nil {
		return out
	}
	for _, name := range names {
		out[name] = mem.DumpFile(walDir + "/" + name)
	}
	return out
}

// CrashSweep power-cuts the log at every Stride-th mutating filesystem
// operation, recovers from the materialized crash image, and checks the
// recovery invariant at each point. It returns once the fault point moves
// past the workload's total op count.
func (c Config) CrashSweep() *Report {
	c.defaults()
	events := Workload(c.Seed, c.Events)
	rep := &Report{}
	start, stride := uint64(1), uint64(c.Stride)
	if c.At > 0 {
		start, stride = c.At, 0
	}
	for at := start; ; at += stride {
		done, fail := c.crashPoint(events, at)
		if done {
			break
		}
		rep.Points++
		if fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if c.At > 0 {
			break
		}
	}
	if c.Logf != nil {
		c.Logf("crash sweep: seed=%d points=%d recoveries=%d failures=%d",
			c.Seed, rep.Points, rep.Recoveries, len(rep.Failures))
	}
	return rep
}

// crashPoint runs one workload with a power cut armed at mutating op `at`.
// done reports that `at` lies beyond the workload (sweep complete).
func (c Config) crashPoint(events []wal.Event, at uint64) (done bool, fail *Failure) {
	mem := faultfs.NewMem(pointSeed(c.Seed, at))
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeCrash, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(mem),
		}
	}
	l, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return false, mkFail("initial Open: %v", err)
	}
	mem.CrashAt(at)
	acked := 0
	for _, e := range events {
		if err := l.Append(e); err != nil {
			break
		}
		acked++
	}
	if !mem.Dead() {
		// The fault point lies beyond the workload's op count.
		l.Close()
		return true, nil
	}
	mem.Crash()

	l2, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return false, mkFail("recovery Open after crash: %v", err)
	}
	defer l2.Close()
	n := int(l2.State().Events)
	switch {
	case !c.NoSync && n < acked:
		return false, mkFail("recovered %d events but %d were acked+fsynced (durability lost)", n, acked)
	case n > acked+1:
		return false, mkFail("recovered %d events but only %d were issued before the cut (resurrection)", n, acked+1)
	case n > len(events):
		return false, mkFail("recovered %d events, workload only has %d", n, len(events))
	}
	want := Reference(events[:n])
	if d := want.Diff(l2.State()); d != "" {
		return false, mkFail("recovery invariant violated at prefix %d: %s", n, d)
	}

	// Recovery is idempotent: the first Open normalized the torn tail, so
	// a second one must reproduce the identical state.
	if err := l2.Close(); err != nil {
		return false, mkFail("close after recovery: %v", err)
	}
	l3, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return false, mkFail("second recovery Open: %v", err)
	}
	defer l3.Close()
	if d := want.Diff(l3.State()); d != "" {
		return false, mkFail("recovery not idempotent: %s", d)
	}

	// The recovered log is live: an append past the crash lands and is
	// itself recoverable.
	post := wal.Sample(want.LastAt+1, "temp", "post-crash")
	if n >= 2 { // catalog prologue replayed, image exists
		if err := l3.Append(post); err != nil {
			return false, mkFail("append after recovery: %v", err)
		}
	}
	return false, nil
}

// EIOSweep injects one transient fault — alternating plain EIO and a torn
// short write — into every Stride-th data write of the workload. The log
// must heal (or, for faults on snapshot writes, defer the snapshot), stay
// unpoisoned, acknowledge every other append, and recover to exactly the
// acknowledged events.
func (c Config) EIOSweep() *Report {
	c.defaults()
	events := Workload(c.Seed, c.Events)

	// Probe the faultless run once to learn the write count.
	probe := faultfs.NewMem(pointSeed(c.Seed, 0))
	l, err := wal.Open(c.walOptions(probe))
	rep := &Report{}
	if err != nil {
		rep.Failures = append(rep.Failures, Failure{Mode: ModeEIO, Seed: c.Seed, Events: c.Events, Detail: err.Error()})
		return rep
	}
	for _, e := range events {
		if err := l.Append(e); err != nil {
			rep.Failures = append(rep.Failures, Failure{Mode: ModeEIO, Seed: c.Seed, Events: c.Events,
				Detail: fmt.Sprintf("faultless probe append failed: %v", err)})
			return rep
		}
	}
	writes := probe.Writes()
	l.Close()

	start, stride := uint64(1), uint64(c.Stride)
	if c.At > 0 {
		start, stride = c.At, 1
	}
	for at := start; at <= writes; at += stride {
		rep.Points++
		if fail := c.eioPoint(events, at); fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if c.At > 0 {
			break
		}
	}
	if c.Logf != nil {
		c.Logf("eio sweep: seed=%d writes=%d points=%d recoveries=%d failures=%d",
			c.Seed, writes, rep.Points, rep.Recoveries, len(rep.Failures))
	}
	return rep
}

func (c Config) eioPoint(events []wal.Event, at uint64) *Failure {
	mem := faultfs.NewMem(pointSeed(c.Seed, at))
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeEIO, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(mem),
		}
	}
	if at%2 == 0 {
		mem.TearWrite(at)
	} else {
		mem.FailWrite(at)
	}
	l, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return mkFail("Open: %v", err)
	}
	var acked []wal.Event
	faulted := 0
	for _, e := range events {
		err := l.Append(e)
		switch {
		case err == nil:
			acked = append(acked, e)
		case errors.Is(err, faultfs.ErrInjected):
			faulted++
		case faulted > 0:
			// The fault may have cost a catalog event (an image or derived
			// registration); later events depending on it are then rightly
			// rejected by validation — neither acked nor applied.
		default:
			return mkFail("append returned unexpected error: %v", err)
		}
	}
	if perr := l.Err(); perr != nil {
		return mkFail("transient fault poisoned the log: %v", perr)
	}
	if faulted > 1 {
		return mkFail("one injected write fault surfaced %d append errors", faulted)
	}
	want := Reference(acked)
	if d := want.Diff(l.State()); d != "" {
		return mkFail("live state after heal: %s", d)
	}
	if err := l.Close(); err != nil {
		return mkFail("close: %v", err)
	}
	l2, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return mkFail("recovery Open: %v", err)
	}
	defer l2.Close()
	if d := want.Diff(l2.State()); d != "" {
		return mkFail("recovered state != acked events: %s", d)
	}
	return nil
}

// RenameSweep fails each snapshot's tmp→snap rename in turn. Appends must
// be unaffected (snapshots are accelerators), the failure must be counted,
// and recovery — served by an older snapshot or a full replay — must still
// reconstruct every event.
func (c Config) RenameSweep() *Report {
	c.defaults()
	events := Workload(c.Seed, c.Events)

	probe := faultfs.NewMem(pointSeed(c.Seed, 0))
	l, err := wal.Open(c.walOptions(probe))
	rep := &Report{}
	if err != nil {
		rep.Failures = append(rep.Failures, Failure{Mode: ModeRename, Seed: c.Seed, Events: c.Events, Detail: err.Error()})
		return rep
	}
	for _, e := range events {
		l.Append(e)
	}
	renames := probe.Renames()
	l.Close()

	start := uint64(1)
	if c.At > 0 {
		start = c.At
	}
	for at := start; at <= renames; at++ {
		rep.Points++
		if fail := c.renamePoint(events, at); fail != nil {
			rep.Failures = append(rep.Failures, *fail)
		} else {
			rep.Recoveries++
		}
		if c.At > 0 {
			break
		}
	}
	if c.Logf != nil {
		c.Logf("rename sweep: seed=%d renames=%d points=%d recoveries=%d failures=%d",
			c.Seed, renames, rep.Points, rep.Recoveries, len(rep.Failures))
	}
	return rep
}

func (c Config) renamePoint(events []wal.Event, at uint64) *Failure {
	mem := faultfs.NewMem(pointSeed(c.Seed, at))
	mkFail := func(format string, args ...any) *Failure {
		return &Failure{
			Mode: ModeRename, Seed: c.Seed, At: at, Events: c.Events,
			Detail: fmt.Sprintf(format, args...), Segments: dumpSegments(mem),
		}
	}
	mem.FailRename(at)
	l, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return mkFail("Open: %v", err)
	}
	for i, e := range events {
		if err := l.Append(e); err != nil {
			return mkFail("append %d failed under a rename fault: %v", i, err)
		}
	}
	if st := l.Stats(); st.SnapshotErrors == 0 {
		return mkFail("rename fault was never counted (SnapshotErrors=0, %d snapshots)", st.Snapshots)
	}
	if err := l.Close(); err != nil {
		return mkFail("close: %v", err)
	}
	want := Reference(events)
	l2, err := wal.Open(c.walOptions(mem))
	if err != nil {
		return mkFail("recovery Open: %v", err)
	}
	defer l2.Close()
	if d := want.Diff(l2.State()); d != "" {
		return mkFail("recovered state after failed snapshot rename: %s", d)
	}
	return nil
}
