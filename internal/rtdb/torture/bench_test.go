package torture

import "testing"

// BenchmarkCrashRecover measures one full crash-torture point: run the
// workload into a power cut, materialize the crash image, recover, and check
// the recovery invariant. crashes recovered/sec = 1e9 / (ns/op); the figure
// lands in BENCH_rtdb.json via cmd/benchjson.
func BenchmarkCrashRecover(b *testing.B) {
	c := Config{Seed: 1, Events: 60}
	c.defaults()
	events := Workload(c.Seed, c.Events)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := uint64(10 + i%120) // rotate across fault points
		done, fail := c.crashPoint(events, at)
		if fail != nil {
			b.Fatalf("%s", fail.String())
		}
		if done {
			b.Fatalf("fault point %d beyond workload", at)
		}
	}
}

// BenchmarkChaos measures one whole chaos run (concurrent sessions, faults,
// recovery, conservation checks).
func BenchmarkChaos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := Chaos(ChaosConfig{Seed: uint64(i + 1), Sessions: 4, OpsEach: 50})
		if !rep.Ok() {
			b.Fatalf("%s", rep.Failures[0].String())
		}
	}
}
