package subspec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
)

// TestSubHammer throws 32 subscribers and 4 writers at one loopback listener
// under the race detector, drains the listener mid-flight (taking every
// connection down with subscriptions attached and pushes in the queues),
// restores it, and lets the client package's automatic resume carry every
// surviving subscription across the seam. Eight subscriptions are cancelled
// under fire just before the drain so teardown and resume interleave.
//
// What must hold at the end: every consumer saw strictly increasing cursors
// across the drain (no duplicate, no regression), every surviving
// subscription resumed, and the server's push conservation law closed —
// every scheduled tick pushed, dropped, or expired, nothing lost in the
// teardown of either the cancelled or the drained attachments.
func TestSubHammer(t *testing.T) {
	const (
		writers     = 4
		subscribers = 32
		cancelEarly = 8 // cancelled mid-flight, before the drain
		opsPerPhase = 150
	)
	cfg := nodeConfig(nil)
	cfg.Sessions = writers + subscribers + 4
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ns := netserve.New(srv, netserve.Options{})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ns.Close() }()
	addrS := addr.String()

	copt := client.Options{
		RetryAttempts: 200, RetryBackoff: 2 * time.Millisecond,
		RetryBackoffMax: 50 * time.Millisecond, DialTimeout: 2 * time.Second,
	}

	// Subscribers: one client and one standing query each, with a consumer
	// goroutine asserting cursor monotonicity until its channel closes.
	subClients := make([]*client.Client, subscribers)
	subs := make([]*client.Subscription, subscribers)
	violations := make(chan string, subscribers)
	var received atomic.Uint64
	var consumers sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		copt.Name = fmt.Sprintf("sub-%d", i)
		c, err := client.Dial(addrS, copt)
		if err != nil {
			t.Fatal(err)
		}
		subClients[i] = c
		s, err := c.Subscribe(client.SubSpec{
			Query: "status_q", Period: 1,
			Kind: deadline.Soft, Deadline: 1 << 20, MinUseful: 1,
			Depth: 8, Buffer: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
		consumers.Add(1)
		go func(id int, s *client.Subscription) {
			defer consumers.Done()
			var last uint64
			for p := range s.Pushes() {
				if p.Cursor <= last {
					select {
					case violations <- fmt.Sprintf("sub %d: cursor %d after %d", id, p.Cursor, last):
					default:
					}
				}
				last = p.Cursor
				received.Add(1)
			}
		}(i, s)
	}
	defer func() {
		for _, c := range subClients {
			_ = c.Close()
		}
	}()

	// Writers: two phases of sample injection with the drain between them.
	// Errors during the down-window are expected and retried by the client;
	// a writer only reports one if its whole budget of attempts runs out.
	gate := make(chan struct{})
	var phase1, phase2 sync.WaitGroup
	werrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		phase1.Add(1)
		phase2.Add(1)
		go func(w int) {
			defer phase2.Done()
			c, err := client.Dial(addrS, client.Options{
				Name:          fmt.Sprintf("writer-%d", w),
				RetryAttempts: 200, RetryBackoff: 2 * time.Millisecond,
				RetryBackoffMax: 50 * time.Millisecond, DialTimeout: 2 * time.Second,
			})
			if err != nil {
				phase1.Done()
				werrs <- err
				return
			}
			defer c.Close()
			pump := func(n int) bool {
				for i := 0; i < n; i++ {
					for attempt := 0; ; attempt++ {
						if err := c.InjectSample("temp", fmt.Sprint(20+i%20)); err == nil {
							break
						} else if attempt > 500 {
							werrs <- fmt.Errorf("writer %d gave up: %w", w, err)
							return false
						}
						time.Sleep(2 * time.Millisecond)
					}
				}
				return true
			}
			ok := pump(opsPerPhase)
			phase1.Done()
			if !ok {
				return
			}
			<-gate
			pump(opsPerPhase)
			_ = c.Flush()
		}(w)
	}
	phase1.Wait()

	// Cancel a quarter of the field under fire, then pull the plug.
	for i := 0; i < cancelEarly; i++ {
		if err := subs[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	ns = netserve.New(srv, netserve.Options{})
	if _, err := ns.Listen(addrS); err != nil {
		t.Fatal(err)
	}

	// Every surviving subscription must resume on the restored listener.
	deadlineAt := time.Now().Add(15 * time.Second)
	for {
		var resumed uint64
		for _, c := range subClients[cancelEarly:] {
			resumed += c.Stats.Resubscribes.Load()
		}
		if resumed >= subscribers-cancelEarly {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatalf("resume stalled: %d of %d resubscribed", resumed, subscribers-cancelEarly)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	phase2.Wait()
	close(werrs)
	for err := range werrs {
		t.Error(err)
	}

	// Quiesce: let the pumps flush what the flushed samples scheduled, then
	// tear everything down in serving order.
	time.Sleep(300 * time.Millisecond)
	for _, s := range subs[cancelEarly:] {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range subClients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	consumers.Wait()
	close(violations)
	for v := range violations {
		t.Error(v)
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Stop()

	if received.Load() == 0 {
		t.Fatal("hammer delivered nothing")
	}
	m := srv.Metrics.Snapshot()
	if m.SubsOpened != m.SubsClosed {
		t.Errorf("subs opened %d != closed %d", m.SubsOpened, m.SubsClosed)
	}
	if m.Pushed == 0 || m.PushAccounted() != m.PushScheduled {
		t.Errorf("push conservation: scheduled %d != accounted %d (pushed %d dropped %d expired %d)",
			m.PushScheduled, m.PushAccounted(), m.Pushed, m.PushDropped, m.PushExpired)
	}
	w := ns.Wire.Snapshot()
	if w.ConnsAccepted != w.ConnsClosed+w.ConnsRefused {
		t.Errorf("connection conservation: accepted %d != closed %d + refused %d",
			w.ConnsAccepted, w.ConnsClosed, w.ConnsRefused)
	}
}
