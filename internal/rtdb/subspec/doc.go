// Package subspec is the numbered conformance suite for the standing-query
// (push subscription) subsystem. Each SUB-xxx spec is written once against a
// transport-neutral interface and runs identically on two transports:
//
//   - loopback: sub.Spec attached straight onto a server (ServerSub.Pop),
//     the in-process path rtdbd's own periodic machinery uses;
//   - tcp: client.Subscribe over netserve — SubOpen/SubAck/Push frames on a
//     real socket, with the client package's automatic resume.
//
// The suite pins the subsystem's portable contract, not transport detail:
// admission answers exactly once (SUB-001); delivery is periodic with
// contiguous cursors (SUB-002); a slow reader loses oldest, counted, and the
// audit arithmetic received + dropped + expired + locally-shed == cursor
// closes exactly (SUB-003); cancel stops delivery at a resumable cursor
// (SUB-004); and resume continues at cursor+1 with fresh tallies after a
// reconnect to the same node (SUB-005) or a failover onto a promoted
// successor (SUB-006) — no acknowledged push replayed, no skip uncounted.
package subspec
