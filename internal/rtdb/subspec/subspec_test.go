package subspec

import (
	"strconv"
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/replica"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtdb/sub"
)

// push is the transport-neutral view of one delivered tick. dropped and
// expired are the cumulative per-attachment tallies the push carried.
type push struct {
	cursor, dropped, expired uint64
	answers                  []string
}

// handle is one attached subscription as a spec sees it.
type handle interface {
	// next returns the next delivered push; ok is false when none arrives
	// within d (or the subscription ended).
	next(d time.Duration) (push, bool)
	// seen is the newest cursor known client-side — the resume point.
	seen() uint64
	// tallies is the newest cumulative server-side (dropped, expired)
	// counts known client-side — tracked even when the pushes carrying
	// them were shed locally, so the audit closes through consumer lag.
	tallies() (dropped, expired uint64)
	// lost counts pushes the transport shed client-side (the consumer
	// lagged); zero on transports without a client-side buffer stage.
	lost() uint64
	// cancel detaches the subscription; delivery must stop.
	cancel(t *testing.T)
}

// env is one transport under test.
type env interface {
	// subscribe attaches a standing query (client.SubSpec is the shared
	// envelope vocabulary); a refused envelope returns an error.
	subscribe(t *testing.T, s client.SubSpec) (handle, error)
	// advance applies n samples (temp=30) and blocks until they are applied
	// — every tick they make due is scheduled by the time it returns.
	advance(t *testing.T, n int)
	// reconnect severs the transport under its live handles and restores
	// the same node; it returns once every handle is reattached.
	reconnect(t *testing.T, hs ...handle)
	// failover kills the node and promotes its successor; it returns once
	// every handle is reattached there.
	failover(t *testing.T, hs ...handle)
	// finish cancels hs, tears the transport down, and checks the push
	// conservation books on every node the spec touched.
	finish(t *testing.T, hs ...handle)
}

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	v, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if v > l {
		return "high"
	}
	return "ok"
}

// nodeConfig is the catalog every node in the suite serves; with temp=30
// against limit=22, status_q answers "high".
func nodeConfig(l *wal.Log) server.Config {
	return server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "22"},
			Derived: []*rtdb.DerivedObject{{
				Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
			}},
			Images: []*rtdb.ImageObject{{Name: "temp", Period: 5}},
		},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusDerive},
		Sessions: 4,
		Log:      l,
	}
}

func checkBooks(t *testing.T, node string, m server.MetricsSnapshot) {
	t.Helper()
	if m.PushAccounted() != m.PushScheduled {
		t.Errorf("%s: push conservation: scheduled %d != accounted %d (pushed %d dropped %d expired %d)",
			node, m.PushScheduled, m.PushAccounted(), m.Pushed, m.PushDropped, m.PushExpired)
	}
	if m.SubsOpened != m.SubsClosed {
		t.Errorf("%s: subs opened %d != closed %d after teardown", node, m.SubsOpened, m.SubsClosed)
	}
}

// ---------------------------------------------------------------- loopback

type lbHandle struct {
	e        *lbEnv
	spec     client.SubSpec
	ss       *server.ServerSub
	cur      uint64
	drp, exp uint64
	done     bool
}

type lbEnv struct {
	log     *wal.Log
	srv     *server.Server
	servers []*server.Server
}

func newLoopbackEnv(t *testing.T, _ bool) env {
	t.Helper()
	l, err := wal.Open(wal.Options{
		Dir: "wal", FS: faultfs.NewMem(1), SegmentSize: 1 << 16, SnapshotEvery: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(nodeConfig(l))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	e := &lbEnv{log: l, srv: s, servers: []*server.Server{s}}
	t.Cleanup(func() { s.Stop() })
	return e
}

func toSubSpec(s client.SubSpec) sub.Spec {
	return sub.Spec{
		Query: s.Query, Period: s.Period, Kind: s.Kind,
		Deadline: s.Deadline, MinUseful: s.MinUseful,
	}
}

func (e *lbEnv) subscribe(t *testing.T, s client.SubSpec) (handle, error) {
	ss, err := e.srv.Subscribe(toSubSpec(s), 0, int(s.Depth))
	if err != nil {
		return nil, err
	}
	return &lbHandle{e: e, spec: s, ss: ss}, nil
}

func (e *lbEnv) advance(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.srv.Session(0).InjectSample("temp", "30"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.srv.Session(0).Flush(); err != nil {
		t.Fatal(err)
	}
}

// reconnect models a connection loss on the in-process transport: the
// attachment dies (its queued pushes are accounted dropped, exactly like a
// netserve pump teardown) and the consumer reattaches with the cursor it
// holds — the client package automates this same dance over TCP.
func (e *lbEnv) reconnect(t *testing.T, hs ...handle) {
	t.Helper()
	for _, h := range hs {
		e.reattach(t, h.(*lbHandle))
	}
}

// failover: the node dies and a successor recovers from the same WAL; the
// consumer reattaches its held cursor there.
func (e *lbEnv) failover(t *testing.T, hs ...handle) {
	t.Helper()
	e.srv.Stop()
	for _, h := range hs {
		// The dead node's attachment: queued pushes are accounted dropped.
		if _, err := h.(*lbHandle).ss.Cancel(); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := server.New(nodeConfig(e.log))
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	e.srv = s2
	e.servers = append(e.servers, s2)
	t.Cleanup(func() { s2.Stop() })
	for _, h := range hs {
		lh := h.(*lbHandle)
		ss, err := e.srv.Subscribe(toSubSpec(lh.spec), lh.cur, int(lh.spec.Depth))
		if err != nil {
			t.Fatalf("failover reattach: %v", err)
		}
		lh.ss = ss
	}
}

func (e *lbEnv) reattach(t *testing.T, lh *lbHandle) {
	t.Helper()
	if _, err := lh.ss.Cancel(); err != nil {
		t.Fatal(err)
	}
	ss, err := e.srv.Subscribe(toSubSpec(lh.spec), lh.cur, int(lh.spec.Depth))
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	lh.ss = ss
}

func (e *lbEnv) finish(t *testing.T, hs ...handle) {
	t.Helper()
	for _, h := range hs {
		h.cancel(t)
	}
	e.srv.Stop()
	for i, s := range e.servers {
		checkBooks(t, "node "+strconv.Itoa(i), s.Metrics.Snapshot())
	}
}

func (h *lbHandle) next(d time.Duration) (push, bool) {
	end := time.Now().Add(d)
	for {
		p, dropped, ok := h.ss.Pop()
		if ok {
			h.cur = p.Cursor
			h.drp, h.exp = dropped, p.Expired
			return push{cursor: p.Cursor, dropped: dropped, expired: p.Expired, answers: p.Answers}, true
		}
		remain := time.Until(end)
		if remain <= 0 {
			return push{}, false
		}
		select {
		case <-h.ss.Notify():
		case <-time.After(remain):
		}
	}
}

func (h *lbHandle) seen() uint64 { return h.cur }

// The loopback consumer pops straight off the server queue, so the last
// pop's stamps are exact once the handle is drained to quiescence.
func (h *lbHandle) tallies() (uint64, uint64) { return h.drp, h.exp }
func (h *lbHandle) lost() uint64              { return 0 }

func (h *lbHandle) cancel(t *testing.T) {
	t.Helper()
	if h.done {
		return
	}
	h.done = true
	if _, err := h.ss.Cancel(); err != nil {
		t.Fatal(err)
	}
}

// --------------------------------------------------------------------- tcp

type tcpHandle struct {
	sub *client.Subscription
}

func (h *tcpHandle) next(d time.Duration) (push, bool) {
	select {
	case p, ok := <-h.sub.Pushes():
		if !ok {
			return push{}, false
		}
		return push{cursor: p.Cursor, dropped: p.Dropped, expired: p.Expired, answers: p.Answers}, true
	case <-time.After(d):
		return push{}, false
	}
}

func (h *tcpHandle) seen() uint64              { return h.sub.Cursor() }
func (h *tcpHandle) tallies() (uint64, uint64) { return h.sub.Tallies() }
func (h *tcpHandle) lost() uint64              { return h.sub.LocalDrops() }

func (h *tcpHandle) cancel(t *testing.T) {
	t.Helper()
	if err := h.sub.Close(); err != nil {
		t.Fatal(err)
	}
}

type tcpEnv struct {
	log     *wal.Log
	srv     *server.Server
	ns      *netserve.Server
	addrP   string
	r       *replica.Replica
	addrS   string
	c       *client.Client
	servers []*server.Server
}

func newTCPEnv(t *testing.T, failover bool) env {
	t.Helper()
	l, err := wal.Open(wal.Options{
		Dir: "wal", FS: faultfs.NewMem(1), SegmentSize: 1 << 16, SnapshotEvery: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(nodeConfig(l))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	e := &tcpEnv{log: l, srv: s, servers: []*server.Server{s}}
	e.ns = netserve.New(s, netserve.Options{})
	addr, err := e.ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e.addrP = addr.String()
	ring := e.addrP
	if failover {
		r, err := replica.Open(replica.Config{
			Primary: e.addrP,
			WAL:     wal.Options{Dir: "rwal", FS: faultfs.NewMem(2), SegmentSize: 1 << 16, SnapshotEvery: 1 << 20},
			Name:    "subspec-follower",
			Catalog: nodeConfig(nil).Catalog, Registry: nodeConfig(nil).Registry,
			RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
			Seed: 11, HeartbeatTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		e.r = r
		sa, err := r.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		e.addrS = sa.String()
		ring = e.addrP + "," + e.addrS
	}
	c, err := client.Dial(ring, client.Options{
		Name:          "subspec",
		RetryAttempts: 100, RetryBackoff: 5 * time.Millisecond,
		RetryBackoffMax: 50 * time.Millisecond, DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.c = c
	t.Cleanup(func() {
		_ = c.Close()
		_ = e.ns.Close()
		for _, s := range e.servers {
			s.Stop()
		}
		if e.r != nil {
			_ = e.r.Close()
		}
	})
	return e
}

func (e *tcpEnv) subscribe(t *testing.T, s client.SubSpec) (handle, error) {
	cs, err := e.c.Subscribe(s)
	if err != nil {
		return nil, err
	}
	return &tcpHandle{sub: cs}, nil
}

func (e *tcpEnv) advance(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.c.InjectSample("temp", "30"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// waitResubscribed blocks until the client's automatic resume has
// reattached want more subscriptions.
func (e *tcpEnv) waitResubscribed(t *testing.T, base, want uint64) {
	t.Helper()
	end := time.Now().Add(10 * time.Second)
	for e.c.Stats.Resubscribes.Load() < base+want {
		if time.Now().After(end) {
			t.Fatalf("resume stalled: %d resubscribes, want %d more than %d",
				e.c.Stats.Resubscribes.Load(), want, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// reconnect kills every connection (the listener goes down and comes back
// on the same address) and waits for the client's automatic resume.
func (e *tcpEnv) reconnect(t *testing.T, hs ...handle) {
	t.Helper()
	base := e.c.Stats.Resubscribes.Load()
	if err := e.ns.Close(); err != nil {
		t.Fatal(err)
	}
	e.ns = netserve.New(e.srv, netserve.Options{})
	if _, err := e.ns.Listen(e.addrP); err != nil {
		t.Fatal(err)
	}
	e.waitResubscribed(t, base, uint64(len(hs)))
}

// failover promotes the tailing replica into a full server on the standby
// address, then kills the primary; the client walks its ring and resumes on
// the successor.
func (e *tcpEnv) failover(t *testing.T, hs ...handle) {
	t.Helper()
	if e.r == nil {
		t.Fatal("env built without a failover successor")
	}
	base := e.c.Stats.Resubscribes.Load()
	// The successor must hold everything the primary acknowledged before
	// the primary dies — promotion may lose no cursor-acknowledged push.
	if !e.r.WaitSeq(e.log.Seq(), 10*time.Second) {
		t.Fatalf("replica stuck at %d behind primary %d", e.r.Seq(), e.log.Seq())
	}
	// Promote and retire the standby listener first, so the client cannot
	// land on a half-node; then kill the primary.
	if _, err := e.r.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := e.r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.ns.Close(); err != nil {
		t.Fatal(err)
	}
	e.srv.Stop()

	s2, err := server.New(nodeConfig(e.r.Log()))
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	e.srv = s2
	e.servers = append(e.servers, s2)
	e.ns = netserve.New(s2, netserve.Options{})
	if _, err := e.ns.Listen(e.addrS); err != nil {
		t.Fatal(err)
	}
	e.waitResubscribed(t, base, uint64(len(hs)))
}

func (e *tcpEnv) finish(t *testing.T, hs ...handle) {
	t.Helper()
	for _, h := range hs {
		h.cancel(t)
	}
	if err := e.c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.ns.Close(); err != nil {
		t.Fatal(err)
	}
	for _, s := range e.servers {
		s.Stop()
	}
	if e.r != nil {
		_ = e.r.Close()
		checkBooks(t, "standby", e.r.Metrics.Snapshot())
	}
	for i, s := range e.servers {
		checkBooks(t, "node "+strconv.Itoa(i), s.Metrics.Snapshot())
	}
}

// ------------------------------------------------------------------- specs

// base is the suite's default envelope: soft, roomy deadline, so scheduling
// noise never expires a tick a spec expects delivered.
func base() client.SubSpec {
	return client.SubSpec{
		Query: "status_q", Period: 2,
		Kind: deadline.Soft, Deadline: 50, MinUseful: 1,
		Depth: 32, Buffer: 64,
	}
}

// drain pops everything currently deliverable, returning the pushes and
// leaving the handle quiescent.
func drain(h handle, idle time.Duration) []push {
	var out []push
	for {
		p, ok := h.next(idle)
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// SUB-001: subscribe answers exactly once — an admission for a servable
// envelope, an error for an unknown query or a dead period.
func specSubscribeAck(t *testing.T, e env) {
	h, err := e.subscribe(t, base())
	if err != nil {
		t.Fatalf("servable envelope refused: %v", err)
	}
	bad := base()
	bad.Query = "nope_q"
	if _, err := e.subscribe(t, bad); err == nil {
		t.Fatal("unknown catalog query admitted")
	}
	dead := base()
	dead.Period = 0
	if _, err := e.subscribe(t, dead); err == nil {
		t.Fatal("zero period admitted")
	}
	e.finish(t, h)
}

// SUB-002: delivery is periodic with contiguous cursors from 1 and the
// catalog's stamped answers.
func specPeriodicDelivery(t *testing.T, e env) {
	h, err := e.subscribe(t, base())
	if err != nil {
		t.Fatal(err)
	}
	e.advance(t, 8)
	var got []push
	for len(got) < 3 {
		p, ok := h.next(5 * time.Second)
		if !ok {
			t.Fatalf("stalled after %d pushes", len(got))
		}
		got = append(got, p)
	}
	for i, p := range got {
		if p.cursor != uint64(i+1) || p.dropped != 0 || p.expired != 0 {
			t.Fatalf("push %d: cursor %d dropped %d expired %d, want contiguous from 1",
				i, p.cursor, p.dropped, p.expired)
		}
		if len(p.answers) != 1 || p.answers[0] != "high" {
			t.Fatalf("push %d answers: %v", i, p.answers)
		}
	}
	e.finish(t, h)
}

// SUB-003: a reader that sleeps through a burst loses pushes to the bounded
// stages — oldest first server-side — and every loss is counted: the audit
// arithmetic closes exactly at quiescence.
func specDropOldest(t *testing.T, e env) {
	s := base()
	s.Depth = 2
	s.Buffer = 1
	h, err := e.subscribe(t, s)
	if err != nil {
		t.Fatal(err)
	}
	e.advance(t, 24)
	// The reader sleeps through the burst; the bounded stages shed.
	time.Sleep(300 * time.Millisecond)
	got := drain(h, 500*time.Millisecond)
	if len(got) == 0 {
		t.Fatal("no pushes survived the burst")
	}
	// The newest tallies come from the handle, not the last push the
	// consumer happened to receive: on a two-stage transport the pushes
	// carrying the final counts may themselves be shed locally.
	dropped, expired := h.tallies()
	if dropped+h.lost() == 0 {
		t.Fatalf("burst of %d cursors shed nothing through depth %d/buffer %d",
			h.seen(), s.Depth, s.Buffer)
	}
	if received := uint64(len(got)); received+dropped+expired+h.lost() != h.seen() {
		t.Fatalf("audit open: received %d + dropped %d + expired %d + local %d != seen %d",
			received, dropped, expired, h.lost(), h.seen())
	}
	e.finish(t, h)
}

// SUB-004: cancel stops delivery; the held cursor is the resume point.
func specCancel(t *testing.T, e env) {
	h, err := e.subscribe(t, base())
	if err != nil {
		t.Fatal(err)
	}
	e.advance(t, 6)
	if _, ok := h.next(5 * time.Second); !ok {
		t.Fatal("no push before cancel")
	}
	drain(h, 300*time.Millisecond)
	h.cancel(t)
	e.advance(t, 6)
	if p, ok := h.next(400 * time.Millisecond); ok {
		t.Fatalf("push after cancel: %+v", p)
	}
	e.finish(t, h)
}

// resumeShape drives the shared body of SUB-005/006: deliver, sever (via
// sever), and verify continuity — the first push after resume is exactly
// held-cursor+1 with fresh tallies: nothing replayed, nothing skipped.
func resumeShape(t *testing.T, e env, sever func(t *testing.T, hs ...handle)) {
	h, err := e.subscribe(t, base())
	if err != nil {
		t.Fatal(err)
	}
	e.advance(t, 8)
	if _, ok := h.next(5 * time.Second); !ok {
		t.Fatal("no push before severing")
	}
	drain(h, 400*time.Millisecond)
	held := h.seen()
	if held == 0 {
		t.Fatal("no cursor held")
	}

	sever(t, h)

	e.advance(t, 8)
	p, ok := h.next(5 * time.Second)
	if !ok {
		t.Fatal("no push after resume")
	}
	if p.cursor != held+1 {
		t.Fatalf("resumed at cursor %d, held %d — want exactly held+1", p.cursor, held)
	}
	if p.dropped != 0 || p.expired != 0 {
		t.Fatalf("resumed push carries stale tallies: %+v", p)
	}
	if len(p.answers) != 1 || p.answers[0] != "high" {
		t.Fatalf("resumed push answers: %v (state lost across the seam?)", p.answers)
	}
	if q, ok := h.next(5 * time.Second); ok && q.cursor <= p.cursor {
		t.Fatalf("cursors not increasing after resume: %d then %d", p.cursor, q.cursor)
	}
	e.finish(t, h)
}

// SUB-005: resume after a reconnect to the same node.
func specResumeReconnect(t *testing.T, e env) {
	resumeShape(t, e, e.reconnect)
}

// SUB-006: resume after a failover onto the promoted successor.
func specResumeFailover(t *testing.T, e env) {
	resumeShape(t, e, e.failover)
}

// ------------------------------------------------------------------- suite

var specList = []struct {
	id       string
	failover bool // env needs a promotable successor
	run      func(t *testing.T, e env)
}{
	{"SUB-001_subscribe_ack", false, specSubscribeAck},
	{"SUB-002_periodic_delivery", false, specPeriodicDelivery},
	{"SUB-003_drop_oldest", false, specDropOldest},
	{"SUB-004_cancel", false, specCancel},
	{"SUB-005_resume_reconnect", false, specResumeReconnect},
	{"SUB-006_resume_failover", true, specResumeFailover},
}

func TestSubSpecs(t *testing.T) {
	transports := []struct {
		name string
		mk   func(t *testing.T, failover bool) env
	}{
		{"loopback", newLoopbackEnv},
		{"tcp", newTCPEnv},
	}
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, sp := range specList {
				t.Run(sp.id, func(t *testing.T) {
					sp.run(t, tr.mk(t, sp.failover))
				})
			}
		})
	}
}
