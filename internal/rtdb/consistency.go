package rtdb

import (
	"rtc/internal/timeseq"
)

// Age returns a(x) = now − t_x, the age of a timestamped object (§5.1.2).
func Age(now, stamp timeseq.Time) timeseq.Time {
	if stamp > now {
		return 0
	}
	return now - stamp
}

// Dispersion returns d(x, y) = |t_x − t_y|.
func Dispersion(a, b timeseq.Time) timeseq.Time {
	if a > b {
		return a - b
	}
	return b - a
}

// AbsolutelyConsistent reports whether a set of timestamps is absolutely
// consistent: a(x_i) ≤ Ta for every element.
func AbsolutelyConsistent(now timeseq.Time, stamps []timeseq.Time, ta timeseq.Time) bool {
	for _, s := range stamps {
		if Age(now, s) > ta {
			return false
		}
	}
	return true
}

// RelativelyConsistent reports whether a set of timestamps is relatively
// consistent: d(x_i, x_j) ≤ Tr for every pair. Pairwise dispersion over a
// set is bounded by max−min, so a linear scan suffices.
func RelativelyConsistent(stamps []timeseq.Time, tr timeseq.Time) bool {
	if len(stamps) == 0 {
		return true
	}
	lo, hi := stamps[0], stamps[0]
	for _, s := range stamps[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi-lo <= tr
}

// imageStamps collects the latest sample times of all image objects.
func (db *DB) imageStamps() []timeseq.Time {
	var out []timeseq.Time
	for _, o := range db.images {
		if s, ok := o.Latest(); ok {
			out = append(out, s.At)
		}
	}
	return out
}

// AbsoluteConsistency reports whether the database has absolute consistency
// (§5.1.2): the most recent image set is absolutely consistent and the ages
// of the data objects used to derive the derived objects stay below the
// threshold.
func (db *DB) AbsoluteConsistency(ta timeseq.Time) bool {
	now := db.Now()
	if !AbsolutelyConsistent(now, db.imageStamps(), ta) {
		return false
	}
	for _, d := range db.derived {
		if d.valid && Age(now, d.stamp) > ta {
			return false
		}
	}
	return true
}

// RelativeConsistency is the pairwise analogue.
func (db *DB) RelativeConsistency(tr timeseq.Time) bool {
	stamps := db.imageStamps()
	for _, d := range db.derived {
		if d.valid {
			stamps = append(stamps, d.stamp)
		}
	}
	return RelativelyConsistent(stamps, tr)
}
