package server

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
)

// The differential shard suite: one seeded workload pushed through a
// 1-shard and an 8-shard deployment must be observationally identical —
// same query responses (answers, match, deadline verdicts, issue/serve
// stamps), same as-of reads at every probed instant, same conservation
// sums, and the same per-object sample order in the WALs. Sharding is an
// execution strategy, not a semantic: if any of these drift, the router
// leaked into the model.
//
// The workload is driven sequentially with flush points between phases
// (the regime in which the routing clock provably mirrors a single-shard
// clock — concurrent drivers keep the laws but not bit-identical stamps),
// and registers no periodic queries: a periodic evaluation advances only
// its home shard's lane between flushes, so its issue stamps are
// flush-aligned rather than identical. Those are exercised by
// TestShardSingleByteIdentical (byte-level, with periodics) and the race
// suite (concurrent, law-level).

// diffOutcome is everything observable the driver collects from one run.
type diffOutcome struct {
	resps    []Response
	asof     map[string]string // "obj@t" -> value ("?" when absent)
	horizon  timeseq.Time
	applied  uint64
	queries  [4]uint64 // in, hit, miss, nodeadline
	firings  uint64
	perObject map[string][]string // per-object WAL sample sequence "at=value"
}

// driveDifferential runs the seeded workload against any session handle.
type shardSession interface {
	InjectSample(image, value string) error
	Query(QueryRequest) (Response, error)
	Flush() error
}

func driveDifferential(t *testing.T, c shardSession, seed int64, phases, perPhase int, objs []string) []Response {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var resps []Response
	for p := 0; p < phases; p++ {
		for i := 0; i < perPhase; i++ {
			obj := objs[rng.Intn(len(objs))]
			switch rng.Intn(5) {
			case 0, 1, 2:
				if err := c.InjectSample(obj, strconv.Itoa(rng.Intn(100))); err != nil {
					t.Fatal(err)
				}
			case 3:
				// Queries quiesce first: issue stamps must not depend on
				// how far an apply loop got through the queue (true of the
				// raw server too — see TestShardSingleByteIdentical).
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
				resp, err := c.Query(QueryRequest{
					Query: "q-" + obj, Candidate: "42",
					Kind: deadline.Firm, Deadline: 10, MinUseful: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				resps = append(resps, resp)
			case 4:
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
				kind, u := deadline.None, deadline.Usefulness(nil)
				var dl timeseq.Time
				if rng.Intn(2) == 0 {
					kind, dl = deadline.Soft, 6
					u = deadline.Hyperbolic(8, 6)
				}
				resp, err := c.Query(QueryRequest{
					Query: "status_q", Kind: kind, Deadline: dl, MinUseful: 1, U: u,
				})
				if err != nil {
					t.Fatal(err)
				}
				resps = append(resps, resp)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return resps
}

// runDifferential builds a deployment at the given shard count, drives the
// seeded workload, and collects every observable.
func runDifferential(t *testing.T, shards int, seed int64, objs []string) diffOutcome {
	t.Helper()
	base := filepath.Join(t.TempDir(), "wal")
	opt := wal.Options{SegmentSize: 1 << 16, SnapshotEvery: 16}
	cfg, home := shardedSpecConfig(len(objs))
	cfg.QueueDepth = 256
	logs := openShardLogs(t, base, shards, opt)
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: shards, Logs: logs, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()

	out := diffOutcome{asof: map[string]string{}, perObject: map[string][]string{}}
	out.resps = driveDifferential(t, ss.Session(0), seed, 6, 40, objs)

	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	out.horizon = ss.HistoryHorizon()
	// Probe the whole keyspace at a spread of instants up to the horizon.
	for _, obj := range objs {
		for _, frac := range []timeseq.Time{0, 1, 2, 4} {
			at := out.horizon / (frac + 1)
			v, ok := ss.ValueAsOf(obj, at)
			if !ok {
				v = "?"
			}
			out.asof[fmt.Sprintf("%s@%d", obj, at)] = string(v)
		}
	}
	m := ss.MetricsSnapshot()
	out.applied = m.SamplesApplied
	out.queries = [4]uint64{m.QueriesIn, m.DeadlineHit, m.DeadlineMiss, m.NoDeadline}
	out.firings = m.RuleFirings
	if m.QueriesIn != m.QueriesAccounted() {
		t.Fatalf("shards=%d conservation: in=%d accounted=%d", shards, m.QueriesIn, m.QueriesAccounted())
	}
	ss.Stop()
	closeLogs(t, logs)

	// Recover each shard's WAL and extract the per-object sample sequences
	// — the ack order each object's writers observed, as made durable.
	for i := 0; i < shards; i++ {
		o := opt
		o.Dir = ShardDir(base, i, shards)
		l, err := wal.Open(o)
		if err != nil {
			t.Fatal(err)
		}
		st := l.State()
		for name, img := range st.Images {
			var seq []string
			for _, s := range img.Samples {
				seq = append(seq, fmt.Sprintf("%d=%s", s.At, s.Value))
			}
			if _, dup := out.perObject[name]; dup {
				t.Fatalf("image %q recovered from two shards", name)
			}
			out.perObject[name] = seq
		}
		l.Close()
	}
	return out
}

// TestShardDifferential is the suite's centerpiece: shards=1 vs shards=8,
// same seed, every observable equal.
func TestShardDifferential(t *testing.T) {
	objs := shardObjects(16)
	const seed = 0x5eed
	one := runDifferential(t, 1, seed, objs)
	eight := runDifferential(t, 8, seed, objs)

	if len(one.resps) != len(eight.resps) {
		t.Fatalf("response counts differ: %d vs %d", len(one.resps), len(eight.resps))
	}
	for i := range one.resps {
		if !reflect.DeepEqual(one.resps[i], eight.resps[i]) {
			t.Errorf("response %d differs:\n shards=1: %+v\n shards=8: %+v", i, one.resps[i], eight.resps[i])
		}
	}
	if one.horizon != eight.horizon {
		t.Errorf("horizons differ: %d vs %d", one.horizon, eight.horizon)
	}
	for k, v1 := range one.asof {
		if v8, ok := eight.asof[k]; !ok || v8 != v1 {
			t.Errorf("as-of %s: shards=1 %q, shards=8 %q", k, v1, v8)
		}
	}
	if one.applied != eight.applied {
		t.Errorf("SamplesApplied differ: %d vs %d", one.applied, eight.applied)
	}
	if one.queries != eight.queries {
		t.Errorf("query accounting differs: %v vs %v", one.queries, eight.queries)
	}
	if one.firings != eight.firings {
		t.Errorf("rule firings differ: %d vs %d", one.firings, eight.firings)
	}
	for name, seq1 := range one.perObject {
		if !reflect.DeepEqual(seq1, eight.perObject[name]) {
			t.Errorf("per-object WAL order for %q differs:\n shards=1: %v\n shards=8: %v", name, seq1, eight.perObject[name])
		}
	}
	for name := range eight.perObject {
		if _, ok := one.perObject[name]; !ok {
			t.Errorf("object %q only present in the 8-shard WALs", name)
		}
	}
	// The workload actually spread: at 8 shards, more than one WAL
	// directory must hold samples (otherwise the differential proves
	// nothing about routing).
	if len(eight.perObject) < 2 {
		t.Fatalf("only %d objects recovered", len(eight.perObject))
	}
}

// TestShardDifferentialSeeds runs the same differential over a handful of
// seeds and shard counts — cheap insurance that the identity is not an
// artifact of one lucky interleaving.
func TestShardDifferentialSeeds(t *testing.T) {
	objs := shardObjects(12)
	for _, seed := range []int64{1, 7, 0xbeef} {
		for _, shards := range []int{2, 4} {
			one := runDifferential(t, 1, seed, objs)
			n := runDifferential(t, shards, seed, objs)
			if !reflect.DeepEqual(one.resps, n.resps) {
				t.Errorf("seed %#x shards %d: responses differ", seed, shards)
			}
			if one.applied != n.applied || one.queries != n.queries {
				t.Errorf("seed %#x shards %d: accounting differs (%d/%v vs %d/%v)",
					seed, shards, one.applied, one.queries, n.applied, n.queries)
			}
			if !reflect.DeepEqual(one.perObject, n.perObject) {
				t.Errorf("seed %#x shards %d: per-object WAL order differs", seed, shards)
			}
		}
	}
}
