package server

import (
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
)

// TestRaceShardHammer drives an 8-shard deployment from 32 concurrent
// writer sessions mixed with scatter-gather readers (as-of point reads,
// consistent-horizon probes, merged metric snapshots) while a drain
// goroutine repeatedly quiesces a single shard mid-run. Asserts, after the
// global flush: the cross-shard conservation law on the merged counters,
// per-shard conservation on every shard, a monotone consistent horizon,
// and no goroutine leak across Stop. Run under -race via the race-shard
// make target.
func TestRaceShardHammer(t *testing.T) {
	const (
		shards   = 8
		writers  = 32
		opsEach  = 120
		nObjects = 48
	)
	before := runtime.NumGoroutine()

	base := filepath.Join(t.TempDir(), "wal")
	logs := openShardLogs(t, base, shards, wal.Options{SegmentSize: 1 << 16, SnapshotEvery: 8})
	cfg, home := shardedSpecConfig(nObjects)
	cfg.Sessions = writers
	cfg.QueueDepth = 8 // small on purpose: force backpressure rejections
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: shards, Logs: logs, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.RegisterPeriodic(PeriodicQuery{
		Name: "watch", Query: "status_q", Period: 7,
		Kind: deadline.Firm, Deadline: 5, MinUseful: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ss.Start()

	objs := shardObjects(nObjects)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The drain antagonist: pick one shard, pull it to the routing clock
	// and through a durability barrier, over and over — a sharded
	// deployment must keep serving the other seven lanes throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		victim := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh := ss.Shard(victim % shards)
			_ = sh.TickTo(ss.Now())
			_ = sh.Barrier()
			victim++
		}
	}()

	// Scatter-gather readers: horizon must never regress, merged metrics
	// must always be coherent enough to snapshot (the law is asserted at
	// quiescence; here we just hammer the read paths).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastHorizon = ss.HistoryHorizon()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h := ss.HistoryHorizon()
				if h < lastHorizon {
					t.Errorf("consistent horizon regressed: %d -> %d", lastHorizon, h)
					return
				}
				lastHorizon = h
				ss.ValueAsOf(objs[(r*13+i)%nObjects], h)
				_ = ss.MetricsSnapshot()
			}
		}(r)
	}

	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(id int) {
			defer writerWg.Done()
			c := ss.Session(id)
			for op := 0; op < opsEach; op++ {
				obj := objs[(id*7+op)%nObjects]
				switch op % 4 {
				case 0, 1:
					_ = c.InjectSample(obj, strconv.Itoa((id+op)%100))
				case 2:
					_, _ = c.Query(QueryRequest{
						Query: "q-" + obj, Kind: deadline.Firm, Deadline: 20, MinUseful: 1,
					})
				case 3:
					_ = c.Flush()
				}
			}
			_ = c.Flush()
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	m := ss.MetricsSnapshot()
	if m.QueriesIn != m.QueriesAccounted() {
		t.Fatalf("merged conservation violated: in=%d accounted=%d (rejected=%d hit=%d miss=%d none=%d)",
			m.QueriesIn, m.QueriesAccounted(), m.QueriesRejected, m.DeadlineHit, m.DeadlineMiss, m.NoDeadline)
	}
	if m.SamplesIn != m.SamplesApplied+m.SamplesRejected {
		t.Fatalf("merged sample conservation violated: in=%d applied=%d rejected=%d",
			m.SamplesIn, m.SamplesApplied, m.SamplesRejected)
	}
	var perShardIn, perShardAcc uint64
	for i := 0; i < shards; i++ {
		sm := ss.Shard(i).Metrics.Snapshot()
		if sm.QueriesIn != sm.QueriesAccounted() {
			t.Fatalf("shard %d conservation violated: in=%d accounted=%d", i, sm.QueriesIn, sm.QueriesAccounted())
		}
		perShardIn += sm.QueriesIn
		perShardAcc += sm.QueriesAccounted()
	}
	if perShardIn != m.QueriesIn || perShardAcc != m.QueriesAccounted() {
		t.Fatalf("per-shard sums disagree with merged snapshot: %d/%d vs %d/%d",
			perShardIn, perShardAcc, m.QueriesIn, m.QueriesAccounted())
	}

	ss.Stop()
	closeLogs(t, logs)

	// Goroutine-leak check: apply loops, forwarders, and parked durability
	// waiters must all exit with Stop. Allow the runtime a moment to reap.
	deadlineAt := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadlineAt) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after Stop\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRaceShardSingle runs the same hammer shape at one shard — the
// degrade path must be exactly as clean under -race as the full fan-out.
func TestRaceShardSingle(t *testing.T) {
	const writers = 16
	base := filepath.Join(t.TempDir(), "wal")
	logs := openShardLogs(t, base, 1, wal.Options{SegmentSize: 1 << 16})
	cfg, home := shardedSpecConfig(8)
	cfg.Sessions = writers
	cfg.QueueDepth = 8
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: 1, Logs: logs, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	objs := shardObjects(8)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := ss.Session(id)
			for op := 0; op < 60; op++ {
				obj := objs[(id+op)%len(objs)]
				if op%3 == 0 {
					_, _ = c.Query(QueryRequest{Query: "q-" + obj, Kind: deadline.Soft, Deadline: 9, MinUseful: 1, U: deadline.Hyperbolic(4, 9)})
				} else {
					_ = c.InjectSample(obj, strconv.Itoa(op))
				}
			}
			_ = c.Flush()
		}(w)
	}
	wg.Wait()
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	m := ss.MetricsSnapshot()
	if m.QueriesIn != m.QueriesAccounted() {
		t.Fatalf("conservation violated: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}
	ss.Stop()
	closeLogs(t, logs)
}
