// Package server is the concurrent serving layer of the rtdbd subsystem:
// N client sessions inject timed samples and issue aperiodic and periodic
// queries against one §5.1 real-time database (rtdb.DB), with bounded
// per-session queues (reject, never block — firm semantics are preserved by
// accounting a miss instead of waiting), firm/soft-deadline admission
// control driven by the §4.1 usefulness functions, temporal as-of reads
// served from published HistoricalDatabase snapshots without the write
// lock, and write-ahead logging through internal/rtdb/log.
//
// Concurrency model: sessions are producers; one apply goroutine owns the
// database and the virtual clock (an actor, so rtdb.DB itself needs no
// locking), mirroring how the paper's machine consumes one merged timed
// word — Hui & Chikkagoudar's parallel model (PAPERS.md) motivates treating
// the concurrent client streams as first-class timed words whose merge is
// the apply order.
package server

import (
	"sync/atomic"

	"rtc/internal/stats"
)

// Metrics is the server's expvar-style counter block. All fields are
// atomics: sessions update them without the apply loop's involvement and
// readers snapshot them without any lock.
type Metrics struct {
	Chronon atomic.Uint64 // current virtual time (chronons)

	SamplesIn       atomic.Uint64 // samples accepted into a session queue
	SamplesRejected atomic.Uint64 // samples rejected by backpressure
	SamplesApplied  atomic.Uint64 // samples applied to the database

	QueriesIn       atomic.Uint64 // aperiodic query submissions (attempts)
	QueriesRejected atomic.Uint64 // rejected by backpressure
	RejectMiss      atomic.Uint64 // subset of rejections carrying a deadline
	DeadlineHit     atomic.Uint64 // served within the deadline discipline
	DeadlineMiss    atomic.Uint64 // served late or admission-skipped
	NoDeadline      atomic.Uint64 // served class-(i) queries
	AdmissionSkip   atomic.Uint64 // misses (aperiodic or periodic) never evaluated
	// ExpiredOnArrival is the subset of DeadlineMiss accounted by a
	// transport (netserve) for queries whose client-relative deadline was
	// already consumed when the frame arrived — rejected before entering
	// any session queue, never evaluated.
	ExpiredOnArrival atomic.Uint64
	// Degraded is the subset of query outcomes served by a standby during a
	// primary outage: answered from replicated state that may trail the
	// primary, so it is a distinct quality class even when the deadline was
	// met. Like ExpiredOnArrival it annotates, it does not add a term to
	// the conservation law.
	Degraded atomic.Uint64

	PeriodicIssued atomic.Uint64
	PeriodicHit    atomic.Uint64
	PeriodicMiss   atomic.Uint64

	// Standing-query (push subscription) counters. PushScheduled counts
	// every tick of every attached subscription — each consumes one cursor —
	// and the conservation law PushScheduled == Pushed + PushDropped +
	// PushExpired is the subscription-side extension of the QueriesIn ==
	// QueriesAccounted invariant: a scheduled tick is delivered to its
	// subscriber, dropped by its bounded queue (slow reader or teardown), or
	// expired by per-tick admission — never silently lost.
	SubsOpened    atomic.Uint64 // subscriptions attached (opens + resumes)
	SubsClosed    atomic.Uint64 // subscriptions detached (cancel or teardown)
	PushScheduled atomic.Uint64 // subscription ticks scheduled (cursors consumed)
	Pushed        atomic.Uint64 // pushes handed to a transport for delivery
	PushDropped   atomic.Uint64 // pushes discarded by drop-oldest or teardown
	PushExpired   atomic.Uint64 // ticks skipped by per-tick admission

	AsOfReads       atomic.Uint64
	RuleFirings     atomic.Uint64
	CascadeDepthMax atomic.Uint64

	WalAppends    atomic.Uint64
	WalErrors     atomic.Uint64
	FsyncCount    atomic.Uint64
	FsyncNanos    atomic.Uint64
	FsyncMaxNanos atomic.Uint64
	// Group-commit counters (mirrored from the WAL's stats): batches
	// released by one fsync, and the appends whose durability rode them.
	// GroupedAppends / GroupCommits is the realized amortization factor.
	GroupCommits   atomic.Uint64
	GroupedAppends atomic.Uint64
}

// MetricsSnapshot is a plain copy of the counters at one instant.
type MetricsSnapshot struct {
	Chronon uint64

	SamplesIn, SamplesRejected, SamplesApplied uint64

	QueriesIn, QueriesRejected, RejectMiss    uint64
	DeadlineHit, DeadlineMiss, NoDeadline     uint64
	AdmissionSkip, ExpiredOnArrival, Degraded uint64
	PeriodicIssued, PeriodicHit, PeriodicMiss uint64

	SubsOpened, SubsClosed              uint64
	PushScheduled, Pushed               uint64
	PushDropped, PushExpired            uint64

	AsOfReads, RuleFirings, CascadeDepthMax uint64

	WalAppends, WalErrors                 uint64
	FsyncCount, FsyncNanos, FsyncMaxNanos uint64
	GroupCommits, GroupedAppends          uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Chronon:          m.Chronon.Load(),
		SamplesIn:        m.SamplesIn.Load(),
		SamplesRejected:  m.SamplesRejected.Load(),
		SamplesApplied:   m.SamplesApplied.Load(),
		QueriesIn:        m.QueriesIn.Load(),
		QueriesRejected:  m.QueriesRejected.Load(),
		RejectMiss:       m.RejectMiss.Load(),
		DeadlineHit:      m.DeadlineHit.Load(),
		DeadlineMiss:     m.DeadlineMiss.Load(),
		NoDeadline:       m.NoDeadline.Load(),
		AdmissionSkip:    m.AdmissionSkip.Load(),
		ExpiredOnArrival: m.ExpiredOnArrival.Load(),
		Degraded:         m.Degraded.Load(),
		PeriodicIssued:   m.PeriodicIssued.Load(),
		PeriodicHit:      m.PeriodicHit.Load(),
		PeriodicMiss:     m.PeriodicMiss.Load(),
		SubsOpened:       m.SubsOpened.Load(),
		SubsClosed:       m.SubsClosed.Load(),
		PushScheduled:    m.PushScheduled.Load(),
		Pushed:           m.Pushed.Load(),
		PushDropped:      m.PushDropped.Load(),
		PushExpired:      m.PushExpired.Load(),
		AsOfReads:        m.AsOfReads.Load(),
		RuleFirings:      m.RuleFirings.Load(),
		CascadeDepthMax:  m.CascadeDepthMax.Load(),
		WalAppends:       m.WalAppends.Load(),
		WalErrors:        m.WalErrors.Load(),
		FsyncCount:       m.FsyncCount.Load(),
		FsyncNanos:       m.FsyncNanos.Load(),
		FsyncMaxNanos:    m.FsyncMaxNanos.Load(),
		GroupCommits:     m.GroupCommits.Load(),
		GroupedAppends:   m.GroupedAppends.Load(),
	}
}

// AccountExpired records a deadline-carrying query that a transport
// rejected before submission because its client-relative deadline was
// already consumed on arrival. It books the submission and the miss in one
// step, so the QueriesIn == QueriesAccounted conservation law extends over
// the wire: expired-on-arrival queries are counted, never evaluated, never
// silently dropped.
func (m *Metrics) AccountExpired() {
	m.QueriesIn.Add(1)
	m.DeadlineMiss.Add(1)
	m.ExpiredOnArrival.Add(1)
}

// AccountDegraded records a query served by a standby node during a primary
// outage. The submission and its terminal outcome are booked in one step so
// the conservation law holds on the standby too: missed says whether the
// (translated) deadline was blown, hasDeadline whether the query carried
// one at all.
func (m *Metrics) AccountDegraded(missed, hasDeadline bool) {
	m.QueriesIn.Add(1)
	m.Degraded.Add(1)
	switch {
	case !hasDeadline:
		m.NoDeadline.Add(1)
	case missed:
		m.DeadlineMiss.Add(1)
	default:
		m.DeadlineHit.Add(1)
	}
}

// AccountPushed records one subscription push handed to a transport (or an
// in-process consumer) for delivery — the "delivered" term of the push
// conservation law. Transports call it at pop time, after the push has left
// the bounded queue, so a push still exposed to drop-oldest is never
// double-counted.
func (m *Metrics) AccountPushed() {
	m.Pushed.Add(1)
}

// AccountPushDropped records n subscription pushes discarded undelivered:
// by drop-oldest when a subscriber's bounded queue overflowed, or in bulk
// when a connection tears down with pushes still queued. Like AccountExpired
// on the query side, it keeps the loss on the books — the push conservation
// law stays exact through overload and teardown.
func (m *Metrics) AccountPushDropped(n uint64) {
	m.PushDropped.Add(n)
}

// PushAccounted sums every terminal outcome a scheduled subscription tick
// can have. The conservation law PushScheduled == PushAccounted holds at
// quiescence (no pushes parked in delivery queues); the race suite and the
// rtdbload fan-out mode assert it after drain.
func (s MetricsSnapshot) PushAccounted() uint64 {
	return s.Pushed + s.PushDropped + s.PushExpired
}

// QueriesAccounted sums every terminal outcome an aperiodic query can have.
// The conservation law QueriesIn == QueriesAccounted is the "never silently
// dropped" invariant; the race suite asserts it under load.
// (ExpiredOnArrival is a subset of DeadlineMiss, like RejectMiss is a
// subset of QueriesRejected, so neither appears in the sum.)
func (s MetricsSnapshot) QueriesAccounted() uint64 {
	return s.QueriesRejected + s.DeadlineHit + s.DeadlineMiss + s.NoDeadline
}

// MetricPair is one named counter, in the table's display order. The wire
// protocol ships snapshots as these pairs so remote clients (rtdbload) can
// render the identical table without sharing struct layout.
type MetricPair struct {
	Name  string
	Value uint64
}

// Pairs flattens the snapshot into named counters in display order.
func (s MetricsSnapshot) Pairs() []MetricPair {
	return []MetricPair{
		{"chronon", s.Chronon},
		{"samples_in", s.SamplesIn},
		{"samples_rejected", s.SamplesRejected},
		{"samples_applied", s.SamplesApplied},
		{"queries_in", s.QueriesIn},
		{"queries_rejected", s.QueriesRejected},
		{"reject_miss", s.RejectMiss},
		{"deadline_hit", s.DeadlineHit},
		{"deadline_miss", s.DeadlineMiss},
		{"no_deadline", s.NoDeadline},
		{"admission_skip", s.AdmissionSkip},
		{"expired_on_arrival", s.ExpiredOnArrival},
		{"degraded", s.Degraded},
		{"periodic_issued", s.PeriodicIssued},
		{"periodic_hit", s.PeriodicHit},
		{"periodic_miss", s.PeriodicMiss},
		{"subs_opened", s.SubsOpened},
		{"subs_closed", s.SubsClosed},
		{"push_scheduled", s.PushScheduled},
		{"pushed", s.Pushed},
		{"push_dropped", s.PushDropped},
		{"push_expired", s.PushExpired},
		{"asof_reads", s.AsOfReads},
		{"rule_firings", s.RuleFirings},
		{"cascade_depth_max", s.CascadeDepthMax},
		{"wal_appends", s.WalAppends},
		{"wal_errors", s.WalErrors},
		{"fsync_count", s.FsyncCount},
		{"fsync_total_ns", s.FsyncNanos},
		{"fsync_max_ns", s.FsyncMaxNanos},
		{"group_commits", s.GroupCommits},
		{"grouped_appends", s.GroupedAppends},
	}
}

// PairsSharded is Pairs with the snapshot's shard identity prepended as
// two extra rows, "shard" and "shards". The base rows keep their exact
// names — tooling that resolves counters by name (rtdbload's wal_seq
// durability lookup, dashboards keyed on queries_in) reads a sharded
// node's table unchanged; the label rows only add where the table came
// from. TestShardMetricsRows (netserve) pins both halves of that contract.
func (s MetricsSnapshot) PairsSharded(shard, shards int) []MetricPair {
	return append([]MetricPair{
		{"shard", uint64(shard)},
		{"shards", uint64(shards)},
	}, s.Pairs()...)
}

// Table renders the block for the rtdbd metrics printout.
func (s MetricsSnapshot) Table() string {
	t := stats.NewTable("metric", "value")
	for _, p := range s.Pairs() {
		t.Row(p.Name, p.Value)
	}
	return t.String()
}
