// Package server is the concurrent serving layer of the rtdbd subsystem:
// N client sessions inject timed samples and issue aperiodic and periodic
// queries against one §5.1 real-time database (rtdb.DB), with bounded
// per-session queues (reject, never block — firm semantics are preserved by
// accounting a miss instead of waiting), firm/soft-deadline admission
// control driven by the §4.1 usefulness functions, temporal as-of reads
// served from published HistoricalDatabase snapshots without the write
// lock, and write-ahead logging through internal/rtdb/log.
//
// Concurrency model: sessions are producers; one apply goroutine owns the
// database and the virtual clock (an actor, so rtdb.DB itself needs no
// locking), mirroring how the paper's machine consumes one merged timed
// word — Hui & Chikkagoudar's parallel model (PAPERS.md) motivates treating
// the concurrent client streams as first-class timed words whose merge is
// the apply order.
package server

import (
	"sync/atomic"

	"rtc/internal/stats"
)

// Metrics is the server's expvar-style counter block. All fields are
// atomics: sessions update them without the apply loop's involvement and
// readers snapshot them without any lock.
type Metrics struct {
	Chronon atomic.Uint64 // current virtual time (chronons)

	SamplesIn       atomic.Uint64 // samples accepted into a session queue
	SamplesRejected atomic.Uint64 // samples rejected by backpressure
	SamplesApplied  atomic.Uint64 // samples applied to the database

	QueriesIn       atomic.Uint64 // aperiodic query submissions (attempts)
	QueriesRejected atomic.Uint64 // rejected by backpressure
	RejectMiss      atomic.Uint64 // subset of rejections carrying a deadline
	DeadlineHit     atomic.Uint64 // served within the deadline discipline
	DeadlineMiss    atomic.Uint64 // served late or admission-skipped
	NoDeadline      atomic.Uint64 // served class-(i) queries
	AdmissionSkip   atomic.Uint64 // misses (aperiodic or periodic) never evaluated

	PeriodicIssued atomic.Uint64
	PeriodicHit    atomic.Uint64
	PeriodicMiss   atomic.Uint64

	AsOfReads       atomic.Uint64
	RuleFirings     atomic.Uint64
	CascadeDepthMax atomic.Uint64

	WalAppends    atomic.Uint64
	WalErrors     atomic.Uint64
	FsyncCount    atomic.Uint64
	FsyncNanos    atomic.Uint64
	FsyncMaxNanos atomic.Uint64
}

// MetricsSnapshot is a plain copy of the counters at one instant.
type MetricsSnapshot struct {
	Chronon uint64

	SamplesIn, SamplesRejected, SamplesApplied uint64

	QueriesIn, QueriesRejected, RejectMiss uint64
	DeadlineHit, DeadlineMiss, NoDeadline  uint64
	AdmissionSkip                          uint64
	PeriodicIssued, PeriodicHit, PeriodicMiss uint64

	AsOfReads, RuleFirings, CascadeDepthMax uint64

	WalAppends, WalErrors                   uint64
	FsyncCount, FsyncNanos, FsyncMaxNanos   uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Chronon:         m.Chronon.Load(),
		SamplesIn:       m.SamplesIn.Load(),
		SamplesRejected: m.SamplesRejected.Load(),
		SamplesApplied:  m.SamplesApplied.Load(),
		QueriesIn:       m.QueriesIn.Load(),
		QueriesRejected: m.QueriesRejected.Load(),
		RejectMiss:      m.RejectMiss.Load(),
		DeadlineHit:     m.DeadlineHit.Load(),
		DeadlineMiss:    m.DeadlineMiss.Load(),
		NoDeadline:      m.NoDeadline.Load(),
		AdmissionSkip:   m.AdmissionSkip.Load(),
		PeriodicIssued:  m.PeriodicIssued.Load(),
		PeriodicHit:     m.PeriodicHit.Load(),
		PeriodicMiss:    m.PeriodicMiss.Load(),
		AsOfReads:       m.AsOfReads.Load(),
		RuleFirings:     m.RuleFirings.Load(),
		CascadeDepthMax: m.CascadeDepthMax.Load(),
		WalAppends:      m.WalAppends.Load(),
		WalErrors:       m.WalErrors.Load(),
		FsyncCount:      m.FsyncCount.Load(),
		FsyncNanos:      m.FsyncNanos.Load(),
		FsyncMaxNanos:   m.FsyncMaxNanos.Load(),
	}
}

// QueriesAccounted sums every terminal outcome an aperiodic query can have.
// The conservation law QueriesIn == QueriesAccounted is the "never silently
// dropped" invariant; the race suite asserts it under load.
func (s MetricsSnapshot) QueriesAccounted() uint64 {
	return s.QueriesRejected + s.DeadlineHit + s.DeadlineMiss + s.NoDeadline
}

// Table renders the block for the rtdbd metrics printout.
func (s MetricsSnapshot) Table() string {
	t := stats.NewTable("metric", "value")
	row := func(name string, v uint64) { t.Row(name, v) }
	row("chronon", s.Chronon)
	row("samples_in", s.SamplesIn)
	row("samples_rejected", s.SamplesRejected)
	row("samples_applied", s.SamplesApplied)
	row("queries_in", s.QueriesIn)
	row("queries_rejected", s.QueriesRejected)
	row("reject_miss", s.RejectMiss)
	row("deadline_hit", s.DeadlineHit)
	row("deadline_miss", s.DeadlineMiss)
	row("no_deadline", s.NoDeadline)
	row("admission_skip", s.AdmissionSkip)
	row("periodic_issued", s.PeriodicIssued)
	row("periodic_hit", s.PeriodicHit)
	row("periodic_miss", s.PeriodicMiss)
	row("asof_reads", s.AsOfReads)
	row("rule_firings", s.RuleFirings)
	row("cascade_depth_max", s.CascadeDepthMax)
	row("wal_appends", s.WalAppends)
	row("wal_errors", s.WalErrors)
	row("fsync_count", s.FsyncCount)
	row("fsync_total_ns", s.FsyncNanos)
	row("fsync_max_ns", s.FsyncMaxNanos)
	return t.String()
}
