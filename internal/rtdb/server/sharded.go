// Keyspace sharding: a ShardedServer is N complete single-shard stacks —
// each with its own database, apply loop, WAL directory, and group-commit
// window — composed behind one deterministic router. Object names map to
// shards through rtwire.ShardOf, the stable hash clients use to compute
// placement, so a sample for "temp" lands on the same shard whether it is
// routed here, by a remote client, or replayed from a per-shard WAL.
//
// What stays exactly single-shard: everything inside a shard. Group commit,
// replication fan-out, snapshot publication, admission control, and the
// conservation laws all run per shard, untouched — the sharded layer only
// routes, stamps, and aggregates. What the layer adds:
//
//   - A global routing clock (rc). Every routed request is stamped with the
//     chronon it would have landed at on a single-shard server: samples take
//     rc and advance it by one, evaluated queries advance it by EvalCost,
//     ticks by their span. A shard receiving a stamped request jumps its
//     local clock to the stamp (firing its own periodic/subscription dues at
//     their instants on the way), so under a sequential driver the per-shard
//     WALs carry the same timestamps a single shard would have written.
//   - A consistent read horizon: HistoryHorizon is the minimum over the
//     shard horizons, and Flush pulls every shard up to rc before the
//     durability barrier so an idle lane never pins the horizon.
//   - Aggregated metrics: per-shard counter blocks stay intact (each obeys
//     its own conservation laws) and MetricsSnapshot sums them — the
//     cross-shard sums obey the same laws, which the shard suites check.
//
// With Shards == 1 the composition degrades to a pass-through: one shard,
// the base WAL directory used verbatim, byte-identical log output.

package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"rtc/internal/relational"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// ShardedConfig describes a sharded deployment.
type ShardedConfig struct {
	// Base is the per-shard configuration template. Base.Log must be nil:
	// per-shard logs come through Logs. Base.Spec is the whole catalog; it
	// is split across the shards by NewSharded (invariants replicated
	// everywhere, images placed by rtwire.ShardOf, derived objects
	// co-located with their image sources, rules installed on every shard).
	Base Config
	// Shards is the shard count (default 1).
	Shards int
	// Logs, when non-nil, holds one write-ahead log per shard (len must
	// equal Shards). Open them against ShardDir so recovery finds the same
	// layout. Nil runs every shard log-less.
	Logs []*wal.Log
	// QueryHome maps a catalog query name to the object name whose shard
	// owns it — the query's read set must live on that shard. Queries not
	// listed route by ShardOf(query name).
	QueryHome map[string]string
}

// ShardDir is the conventional per-shard WAL layout: the base directory
// itself for a single shard (byte-identical to an unsharded deployment),
// base/shard-NN for a sharded one.
func ShardDir(base string, shard, shards int) string {
	if shards < 2 {
		return base
	}
	return filepath.Join(base, fmt.Sprintf("shard-%02d", shard))
}

// ShardedServer routes sessions over N single-shard servers.
type ShardedServer struct {
	cfg    ShardedConfig
	shards []*Server
	// rc is the global routing clock (see the package comment above).
	rc       atomic.Uint64
	sessions []*ShardedSession
}

// NewSharded builds the composition: the spec is split, each shard gets a
// full single-shard Server (recovering from its own log if one is given),
// and the routing clock starts at the newest recovered chronon.
func NewSharded(cfg ShardedConfig) (*ShardedServer, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Base.Log != nil {
		return nil, errors.New("server: ShardedConfig.Base.Log must be nil; per-shard logs go in Logs")
	}
	if cfg.Logs != nil && len(cfg.Logs) != cfg.Shards {
		return nil, fmt.Errorf("server: %d logs for %d shards", len(cfg.Logs), cfg.Shards)
	}
	specs, err := splitSpec(cfg.Base.Spec, cfg.Shards)
	if err != nil {
		return nil, err
	}
	ss := &ShardedServer{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		c := cfg.Base
		c.Spec = specs[i]
		if cfg.Logs != nil {
			c.Log = cfg.Logs[i]
		}
		sh, err := New(c)
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		ss.shards = append(ss.shards, sh)
	}
	// Resume global time at the frontier: the routing clock must not hand
	// out chronons any shard's recovered history already passed.
	for _, sh := range ss.shards {
		if now := uint64(sh.Now()); now > ss.rc.Load() {
			ss.rc.Store(now)
		}
	}
	for i := 0; i < ss.shards[0].Sessions(); i++ {
		t := &ShardedSession{id: i, ss: ss}
		for _, sh := range ss.shards {
			t.per = append(t.per, sh.Session(i))
		}
		ss.sessions = append(ss.sessions, t)
	}
	return ss, nil
}

// splitSpec partitions the catalog: invariants are replicated to every
// shard (they are constants — replication keeps every shard's rule and
// derive closures self-contained), images are placed by ShardOf, and each
// derived object lands on the shard owning its image sources. Sources that
// span shards are a configuration error, reported here rather than as a
// silent wrong answer at derive time.
func splitSpec(sp rtdb.Spec, shards int) ([]rtdb.Spec, error) {
	out := make([]rtdb.Spec, shards)
	for i := range out {
		out[i].Invariants = sp.Invariants
	}
	imgShard := make(map[string]int, len(sp.Images))
	for _, o := range sp.Images {
		k := rtwire.ShardOf(o.Name, shards)
		imgShard[o.Name] = k
		out[k].Images = append(out[k].Images, o)
	}
	placed := make(map[string]int, len(sp.Derived))
	for _, d := range sp.Derived {
		home := -1
		for _, src := range d.Sources {
			k, ok := imgShard[src]
			if !ok {
				if pk, pok := placed[src]; pok {
					k = pk
				} else if _, inv := sp.Invariants[src]; inv {
					continue // invariants exist on every shard
				} else {
					return nil, fmt.Errorf("server: derived object %q reads unknown source %q (derived sources must be declared before their readers)", d.Name, src)
				}
			}
			if home >= 0 && home != k {
				return nil, fmt.Errorf("server: derived object %q reads sources on shards %d and %d; co-locate its image sources or lower the shard count", d.Name, home, k)
			}
			home = k
		}
		if home < 0 {
			home = rtwire.ShardOf(d.Name, shards)
		}
		placed[d.Name] = home
		out[home].Derived = append(out[home].Derived, d)
	}
	return out, nil
}

// Start launches every shard's apply loop.
func (ss *ShardedServer) Start() {
	for _, sh := range ss.shards {
		sh.Start()
	}
}

// Stop stops every shard (concurrently: each shard's final sync is an
// independent fsync, and overlapping them is the whole point of sharding).
func (ss *ShardedServer) Stop() {
	_ = ss.each(func(sh *Server) error { sh.Stop(); return nil })
}

// NumShards returns the shard count.
func (ss *ShardedServer) NumShards() int { return len(ss.shards) }

// Shard exposes the i-th single-shard server — the transport layer wraps
// each in its own listener, and the suites reach per-shard state through it.
func (ss *ShardedServer) Shard(i int) *Server { return ss.shards[i] }

// ShardFor returns the shard index owning an object name.
func (ss *ShardedServer) ShardFor(name string) int {
	return rtwire.ShardOf(name, len(ss.shards))
}

// Session returns the i-th sharded session handle.
func (ss *ShardedServer) Session(i int) *ShardedSession { return ss.sessions[i] }

// Sessions returns the session count.
func (ss *ShardedServer) Sessions() int { return len(ss.sessions) }

// Now returns the global routing clock.
func (ss *ShardedServer) Now() timeseq.Time { return timeseq.Time(ss.rc.Load()) }

// homeShard resolves a query name to its owning shard.
func (ss *ShardedServer) homeShard(query string) int {
	if obj, ok := ss.cfg.QueryHome[query]; ok {
		return rtwire.ShardOf(obj, len(ss.shards))
	}
	return rtwire.ShardOf(query, len(ss.shards))
}

// rcMax advances the routing clock to at least t (CAS-max, never backward).
func (ss *ShardedServer) rcMax(t uint64) {
	for {
		cur := ss.rc.Load()
		if t <= cur || ss.rc.CompareAndSwap(cur, t) {
			return
		}
	}
}

// each runs fn on every shard concurrently and joins the errors. The
// concurrency is load-bearing, not a nicety: a barrier that visited shards
// serially would serialize their fsyncs and forfeit the overlap.
func (ss *ShardedServer) each(fn func(sh *Server) error) error {
	errs := make([]error, len(ss.shards))
	var wg sync.WaitGroup
	for i, sh := range ss.shards {
		wg.Add(1)
		go func(i int, sh *Server) {
			defer wg.Done()
			errs[i] = fn(sh)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Tick advances the global clock by n chronons and pulls every shard up to
// the new target — idle time is global, so periodic queries on every shard
// see it.
func (ss *ShardedServer) Tick(n uint64) error {
	target := timeseq.Time(ss.rc.Add(n))
	return ss.each(func(sh *Server) error { return sh.TickTo(target) })
}

// Barrier blocks until every request enqueued on every shard's inbox
// before it has been applied.
func (ss *ShardedServer) Barrier() error {
	return ss.each(func(sh *Server) error { return sh.Barrier() })
}

// Flush is the global quiescence point: every session queue on every shard
// drains (FIFO behind its pending samples), every shard's clock reaches the
// routing clock, every shard's open commit window closes, and a fresh as-of
// snapshot publishes — after it returns, HistoryHorizon() >= the routing
// clock at call time, and cross-shard reads at or before that horizon see
// one consistent cut.
func (ss *ShardedServer) Flush() error {
	at := timeseq.Time(ss.rc.Load())
	return ss.each(func(sh *Server) error {
		for i := 0; i < sh.Sessions(); i++ {
			served, err := sh.Session(i).flushAt(at)
			if err != nil {
				return err
			}
			ss.rcMax(uint64(served))
		}
		return sh.apply(sh.publishSnapshot)
	})
}

// RegisterPeriodic installs a standing periodic query on the shard owning
// it. Must be called before Start.
func (ss *ShardedServer) RegisterPeriodic(pq PeriodicQuery) error {
	return ss.shards[ss.homeShard(pq.Query)].RegisterPeriodic(pq)
}

// HistoryHorizon is the consistent cross-shard read horizon: the minimum
// over the shard horizons. Reads at or before it see every shard's state.
func (ss *ShardedServer) HistoryHorizon() timeseq.Time {
	var min timeseq.Time
	for i, sh := range ss.shards {
		if h := sh.HistoryHorizon(); i == 0 || h < min {
			min = h
		}
	}
	return min
}

// ValueAsOf routes a temporal point read to the shard owning the image.
func (ss *ShardedServer) ValueAsOf(image string, t timeseq.Time) (rtdb.Value, bool) {
	return ss.shards[ss.ShardFor(image)].ValueAsOf(image, t)
}

// AsOf evaluates a relational query against the published snapshots. A
// stored-relation read routes straight to the owner; anything else
// scatters — the first shard holding the query's whole read set answers
// (cross-shard joins are not served; co-locate the objects instead).
func (ss *ShardedServer) AsOf(q relational.Query, t timeseq.Time) (*relational.Relation, error) {
	if f, ok := q.(relational.From); ok {
		return ss.shards[ss.ShardFor(f.Name)].AsOf(q, t)
	}
	var firstErr error
	for _, sh := range ss.shards {
		rel, err := sh.AsOf(q, t)
		if err == nil {
			return rel, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// MetricsSnapshot aggregates the per-shard counter blocks. Each shard's
// block satisfies the conservation laws independently, so their sum does
// too — the cross-shard invariant the shard suites assert. Chronon reports
// the routing clock; the max-semantics gauges take the max across shards.
func (ss *ShardedServer) MetricsSnapshot() MetricsSnapshot {
	var out MetricsSnapshot
	for _, sh := range ss.shards {
		out.accumulate(sh.Metrics.Snapshot())
	}
	out.Chronon = ss.rc.Load()
	return out
}

// accumulate folds another shard's snapshot into s: counters add, the
// max-gauges (cascade depth, fsync max) take the max, and Chronon is left
// to the caller (a sum of clocks means nothing).
func (s *MetricsSnapshot) accumulate(o MetricsSnapshot) {
	s.SamplesIn += o.SamplesIn
	s.SamplesRejected += o.SamplesRejected
	s.SamplesApplied += o.SamplesApplied
	s.QueriesIn += o.QueriesIn
	s.QueriesRejected += o.QueriesRejected
	s.RejectMiss += o.RejectMiss
	s.DeadlineHit += o.DeadlineHit
	s.DeadlineMiss += o.DeadlineMiss
	s.NoDeadline += o.NoDeadline
	s.AdmissionSkip += o.AdmissionSkip
	s.ExpiredOnArrival += o.ExpiredOnArrival
	s.Degraded += o.Degraded
	s.PeriodicIssued += o.PeriodicIssued
	s.PeriodicHit += o.PeriodicHit
	s.PeriodicMiss += o.PeriodicMiss
	s.SubsOpened += o.SubsOpened
	s.SubsClosed += o.SubsClosed
	s.PushScheduled += o.PushScheduled
	s.Pushed += o.Pushed
	s.PushDropped += o.PushDropped
	s.PushExpired += o.PushExpired
	s.AsOfReads += o.AsOfReads
	s.RuleFirings += o.RuleFirings
	if o.CascadeDepthMax > s.CascadeDepthMax {
		s.CascadeDepthMax = o.CascadeDepthMax
	}
	s.WalAppends += o.WalAppends
	s.WalErrors += o.WalErrors
	s.FsyncCount += o.FsyncCount
	s.FsyncNanos += o.FsyncNanos
	if o.FsyncMaxNanos > s.FsyncMaxNanos {
		s.FsyncMaxNanos = o.FsyncMaxNanos
	}
	s.GroupCommits += o.GroupCommits
	s.GroupedAppends += o.GroupedAppends
}

// ShardedSession is one client's handle on the composition: the same id on
// every shard, with submissions routed and stamped.
type ShardedSession struct {
	id  int
	ss  *ShardedServer
	per []*Session
}

// ID returns the session index.
func (t *ShardedSession) ID() int { return t.id }

// InjectSample routes one sample to the owning shard, stamped with the
// routing chronon it claims (each sample claims one chronon, exactly as a
// single-shard apply loop spends one per sample).
func (t *ShardedSession) InjectSample(image, value string) error {
	at := timeseq.Time(t.ss.rc.Add(1) - 1)
	return t.per[t.ss.ShardFor(image)].injectSampleAt(image, value, at)
}

// Query routes one aperiodic query to its home shard, issued at the
// routing chronon. An evaluated query advances the routing clock by its
// EvalCost (mirrored from the response's completion stamp); a rejected or
// admission-skipped one spends nothing, exactly like the single-shard path.
func (t *ShardedSession) Query(q QueryRequest) (Response, error) {
	issue := timeseq.Time(t.ss.rc.Load())
	resp, err := t.per[t.ss.homeShard(q.Query)].queryAt(q, issue)
	if err == nil && resp.Evaluated {
		t.ss.rcMax(uint64(resp.Served))
	}
	return resp, err
}

// Flush blocks until everything this session enqueued on any shard has
// been applied and is durable, pulling each shard's clock up to the
// routing clock on the way so idle lanes keep pace. The flush also folds
// each shard's clock back into the routing clock: periodic invocations
// advance a shard on their own (the router never stamps them), and flush
// points are where that spent time becomes global.
func (t *ShardedSession) Flush() error {
	at := timeseq.Time(t.ss.rc.Load())
	var firstErr error
	for _, s := range t.per {
		served, err := s.flushAt(at)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.ss.rcMax(uint64(served))
	}
	return firstErr
}
