package server

import (
	"sync"

	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

// replyPool recycles the one-slot response channels Query and Flush block
// on. A channel is returned to the pool only after its response has been
// received — a request abandoned on server shutdown keeps its channel, so
// a late send can never leak into the next borrower's call.
var replyPool = sync.Pool{
	New: func() any { return make(chan Response, 1) },
}

// Session is one client's handle on the server. Each session owns a
// bounded queue; a full queue rejects immediately (reject-with-deadline-
// miss) rather than blocking, so firm-deadline semantics survive overload.
type Session struct {
	id    int
	srv   *Server
	queue chan request
}

// ID returns the session index.
func (c *Session) ID() int { return c.id }

// forward drains the session queue into the server inbox, preserving the
// session's FIFO order. Backpressure composes: when the inbox is full the
// forwarder stalls, the session queue fills, and submissions start being
// rejected at the edge.
func (c *Session) forward() {
	defer c.srv.wg.Done()
	for {
		select {
		case r := <-c.queue:
			select {
			case c.srv.inbox <- r:
			case <-c.srv.quit:
				return
			}
		case <-c.srv.quit:
			return
		}
	}
}

// trySubmit enqueues without blocking.
func (c *Session) trySubmit(r request) bool {
	if c.srv.closed.Load() {
		return false
	}
	select {
	case c.queue <- r:
		return true
	default:
		return false
	}
}

// InjectSample submits one sensor sample for an image object. It is
// asynchronous: the sample is applied by the server's apply loop. A full
// queue returns ErrBackpressure.
func (c *Session) InjectSample(image, value string) error {
	if c.srv.closed.Load() {
		return ErrClosed
	}
	c.srv.Metrics.SamplesIn.Add(1)
	if !c.trySubmit(request{kind: reqSample, session: c.id, image: image, value: value}) {
		c.srv.Metrics.SamplesIn.Add(^uint64(0)) // undo: never entered a queue
		c.srv.Metrics.SamplesRejected.Add(1)
		return ErrBackpressure
	}
	return nil
}

// Query submits one aperiodic query and blocks for the response. A full
// queue rejects immediately; for deadline-carrying queries the rejection is
// accounted as a deadline miss (never silently dropped).
func (c *Session) Query(q QueryRequest) (Response, error) {
	if c.srv.closed.Load() {
		return Response{}, ErrClosed
	}
	c.srv.Metrics.QueriesIn.Add(1)
	r := request{
		kind: reqQuery, session: c.id, q: q,
		issue: c.srv.Now(), reply: replyPool.Get().(chan Response),
	}
	if !c.trySubmit(r) {
		c.srv.Metrics.QueriesRejected.Add(1)
		if q.Kind != deadline.None {
			c.srv.Metrics.RejectMiss.Add(1)
		}
		replyPool.Put(r.reply)
		return Response{Missed: q.Kind != deadline.None, Issue: r.issue}, ErrBackpressure
	}
	select {
	case resp := <-r.reply:
		replyPool.Put(r.reply)
		return resp, nil
	case <-c.srv.quit:
		return Response{}, ErrClosed
	}
}

// injectSampleAt is InjectSample with a routing-clock stamp: the sample is
// applied at chronon at (or later, if the shard's own clock already passed
// it). Only the sharded router submits stamped requests.
func (c *Session) injectSampleAt(image, value string, at timeseq.Time) error {
	if c.srv.closed.Load() {
		return ErrClosed
	}
	c.srv.Metrics.SamplesIn.Add(1)
	r := request{kind: reqSample, session: c.id, image: image, value: value, at: at, stamped: true}
	if !c.trySubmit(r) {
		c.srv.Metrics.SamplesIn.Add(^uint64(0)) // undo: never entered a queue
		c.srv.Metrics.SamplesRejected.Add(1)
		return ErrBackpressure
	}
	return nil
}

// queryAt is Query with an explicit issue chronon taken from the routing
// clock, so the deadline envelope is judged against global time rather than
// the owning shard's (possibly lagging) local clock.
func (c *Session) queryAt(q QueryRequest, issue timeseq.Time) (Response, error) {
	if c.srv.closed.Load() {
		return Response{}, ErrClosed
	}
	c.srv.Metrics.QueriesIn.Add(1)
	r := request{
		kind: reqQuery, session: c.id, q: q,
		issue: issue, at: issue, stamped: true,
		reply: replyPool.Get().(chan Response),
	}
	if !c.trySubmit(r) {
		c.srv.Metrics.QueriesRejected.Add(1)
		if q.Kind != deadline.None {
			c.srv.Metrics.RejectMiss.Add(1)
		}
		replyPool.Put(r.reply)
		return Response{Missed: q.Kind != deadline.None, Issue: r.issue}, ErrBackpressure
	}
	select {
	case resp := <-r.reply:
		replyPool.Put(r.reply)
		return resp, nil
	case <-c.srv.quit:
		return Response{}, ErrClosed
	}
}

// flushAt is Flush with a routing-clock stamp: before the durability
// barrier resolves, the shard's clock is pulled up to chronon at, so a
// quiet shard's horizon advances with the rest of the group. It returns
// the shard's clock at the barrier — periodic and subscription evaluations
// advance a shard past the stamps it was routed, and the router folds that
// drift back into the global clock at every flush point.
func (c *Session) flushAt(at timeseq.Time) (timeseq.Time, error) {
	if c.srv.closed.Load() {
		return 0, ErrClosed
	}
	r := request{kind: reqBarrier, session: c.id, at: at, stamped: true, reply: replyPool.Get().(chan Response)}
	select {
	case c.queue <- r:
	case <-c.srv.quit:
		return 0, ErrClosed
	}
	select {
	case resp := <-r.reply:
		replyPool.Put(r.reply)
		return resp.Served, nil
	case <-c.srv.quit:
		return 0, ErrClosed
	}
}

// Flush blocks until everything this session enqueued before it has been
// applied.
func (c *Session) Flush() error {
	if c.srv.closed.Load() {
		return ErrClosed
	}
	r := request{kind: reqBarrier, session: c.id, reply: replyPool.Get().(chan Response)}
	select {
	case c.queue <- r:
	case <-c.srv.quit:
		return ErrClosed
	}
	select {
	case <-r.reply:
		replyPool.Put(r.reply)
		return nil
	case <-c.srv.quit:
		return ErrClosed
	}
}
