package server

import (
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
)

// TestRaceHammer drives one rtdb.DB through the server from 64 concurrent
// sessions (the ISSUE acceptance bar) mixing samples, deadline-carrying
// queries, as-of reads, and metric snapshots, then asserts the conservation
// law: every query submission is accounted as exactly one of rejected /
// hit / miss / no-deadline — firm misses are never silently dropped.
// Run under -race via the race-rtdb make target.
func TestRaceHammer(t *testing.T) {
	const (
		sessions = 64
		opsEach  = 100
	)
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := wal.Open(wal.Options{Dir: dir, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	cfg := testConfig()
	cfg.Sessions = sessions
	cfg.QueueDepth = 8 // small on purpose: force backpressure rejections
	cfg.Log = l
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPeriodic(PeriodicQuery{
		Name: "watch", Query: "status_q", Period: 7,
		Kind: deadline.Firm, Deadline: 5, MinUseful: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.Session(id)
			for op := 0; op < opsEach; op++ {
				switch op % 4 {
				case 0, 1:
					_ = c.InjectSample("temp", strconv.Itoa(15+(id+op)%15))
				case 2:
					_, err := c.Query(QueryRequest{
						Query: "status_q", Candidate: "ok",
						Kind: deadline.Firm, Deadline: 20, MinUseful: 1,
					})
					if err != nil && err != ErrBackpressure {
						t.Errorf("session %d: %v", id, err)
						return
					}
				case 3:
					if op%8 == 3 {
						_, _ = c.Query(QueryRequest{
							Query: "temp_q",
							Kind:  deadline.Soft, Deadline: 10, MinUseful: 3,
							U: deadline.Hyperbolic(8, 10),
						})
					} else {
						_, _ = s.ValueAsOf("temp", s.Now()/2)
						_ = s.Metrics.Snapshot()
						_ = s.HistoryHorizon()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if err := s.Session(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics.Snapshot()
	s.Stop()

	if got, want := m.QueriesIn, m.QueriesAccounted(); got != want {
		t.Fatalf("conservation violated: QueriesIn=%d accounted=%d (%+v)", got, want, m)
	}
	if m.SamplesIn != m.SamplesApplied {
		t.Fatalf("samples leaked: in=%d applied=%d", m.SamplesIn, m.SamplesApplied)
	}
	if m.QueriesIn == 0 || m.SamplesIn == 0 {
		t.Fatalf("hammer did no work: %+v", m)
	}
	// With QueueDepth 8 and 64 producers the test is only meaningful if
	// backpressure actually engaged; with deadline 20 and 64 interleaved
	// sessions some served queries must also have been late.
	t.Logf("hammer: %d samples (%d rejected), %d queries (%d rejected, %d hit, %d miss, %d soft/no-deadline)",
		m.SamplesIn, m.SamplesRejected, m.QueriesIn, m.QueriesRejected,
		m.DeadlineHit, m.DeadlineMiss, m.NoDeadline)

	// The WAL survived the stampede: reopen and compare against the final
	// database state.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(wal.Options{Dir: dir, SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	img, ok := s.DB().Image("temp")
	if !ok {
		t.Fatal("image missing")
	}
	recovered := l2.State().Images["temp"]
	if recovered == nil || len(recovered.Samples) != len(img.History()) {
		t.Fatalf("wal sample count %d != live history %d",
			len(recovered.Samples), len(img.History()))
	}
}
