package server

import (
	"errors"
	"fmt"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/sub"
	"rtc/internal/timeseq"
)

// This file is the server half of the standing-query subsystem: Subscribe
// and the cancel path run as apply-loop closures (the sub.Table is
// apply-loop-owned state, like the periodic registrations), and runSubs is
// the per-step tick evaluator — the push counterpart of runPeriodic.
// Subscriptions are connection-scoped, not durable: they are not WAL-logged;
// a client that loses its node re-creates them with SubResume, which carries
// the full spec.

// ErrNotAdmissible reports a subscription whose envelope can never be met:
// even an evaluation starting exactly at a tick's issue instant would
// finish too late to clear the declared minimum usefulness. Admitting it
// would schedule work that per-tick admission then sheds forever.
var ErrNotAdmissible = errors.New("server: subscription can never meet its deadline envelope")

// ServerSub is one attached subscription as the transports see it: a popper
// over the bounded delivery queue plus the cancel path. Pop and Notify are
// safe for one consumer goroutine; Cancel may be called from anywhere.
type ServerSub struct {
	srv *Server
	s   *sub.Sub
}

// Subscribe attaches a standing query. spec is the server-relative envelope
// (deadline already translated, decay already shifted by the transport);
// after is the cursor to continue from (0 for a fresh subscription, the
// client's newest cursor on a resume); depth bounds the delivery queue
// (0: Config.SubQueueDepth). Admission runs once here — a subscription
// whose envelope is impossible is refused, not admitted-then-starved — and
// again per tick against the live clock.
func (s *Server) Subscribe(spec sub.Spec, after uint64, depth int) (*ServerSub, error) {
	if spec.Period == 0 {
		return nil, fmt.Errorf("server: subscription needs a positive period")
	}
	if _, ok := s.cfg.Catalog[spec.Query]; !ok {
		return nil, fmt.Errorf("server: subscription names unknown catalog query %q", spec.Query)
	}
	// Subscribe-time admission: the best any tick can do is start its
	// evaluation at the issue instant and finish EvalCost later. If even
	// that cannot meet the envelope, no tick ever will (the test is
	// time-invariant — Score only sees finish−issue).
	if !spec.Admissible(0, timeseq.Time(s.cfg.EvalCost)) {
		return nil, ErrNotAdmissible
	}
	// A deadline-free standing query has nothing for per-tick admission to
	// shed, so its schedule must be feasible outright: each tick costs
	// EvalCost chronons, and a period at or below that is utilization ≥ 1 —
	// the backlog would grow without bound. Deadline-carrying envelopes may
	// subscribe at any period; overload degrades them into counted expired
	// ticks instead.
	if spec.Kind == deadline.None && spec.Period <= timeseq.Time(s.cfg.EvalCost) {
		return nil, ErrNotAdmissible
	}
	if depth <= 0 {
		depth = s.cfg.SubQueueDepth
	}
	var ss *ServerSub
	err := s.apply(func() {
		now := timeseq.Time(s.clock.Load())
		ss = &ServerSub{srv: s, s: s.subs.Attach(spec, after, depth, now)}
		s.Metrics.SubsOpened.Add(1)
	})
	if err != nil {
		return nil, err
	}
	return ss, nil
}

// apply runs fn on the apply loop and waits for it.
func (s *Server) apply(fn func()) error {
	reply := make(chan Response, 1)
	select {
	case s.inbox <- request{kind: reqApply, do: fn, reply: reply}:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case <-reply:
		return nil
	case <-s.quit:
		return ErrClosed
	}
}

// Pop dequeues the oldest queued push and accounts its delivery. droppedCum
// is the queue's cumulative drop count at pop time — the value the
// transport stamps into the frame. ok is false when the queue is empty.
func (ss *ServerSub) Pop() (p sub.Push, droppedCum uint64, ok bool) {
	p, droppedCum, ok = ss.s.Q.Pop()
	if ok {
		ss.srv.Metrics.AccountPushed()
	}
	return p, droppedCum, ok
}

// Notify returns the delivery queue's wake channel.
func (ss *ServerSub) Notify() <-chan struct{} { return ss.s.Q.Notify() }

// Queue exposes the raw delivery queue (tests and benchmarks; transports
// should use Pop so delivery is accounted).
func (ss *ServerSub) Queue() *sub.Queue { return ss.s.Q }

// Spec returns the attached envelope.
func (ss *ServerSub) Spec() sub.Spec { return ss.s.Spec }

// Cancel detaches the subscription and closes its queue, accounting
// everything still queued as dropped. It returns the last assigned cursor
// (for the closing SubAck). Safe to call when the server is stopping: the
// detach is skipped (the apply loop is gone, nothing ticks anymore) but the
// queue is still closed and its leftovers accounted.
func (ss *ServerSub) Cancel() (lastCursor uint64, err error) {
	err = ss.srv.apply(func() {
		ss.srv.subs.Detach(ss.s)
		ss.srv.Metrics.SubsClosed.Add(1)
	})
	if errors.Is(err, ErrClosed) {
		ss.srv.Metrics.SubsClosed.Add(1)
		err = nil
	}
	if n := ss.s.Q.Close(); n > 0 {
		ss.srv.Metrics.AccountPushDropped(uint64(n))
	}
	// The apply loop (if it ran) no longer sees ss.s, so the cursor is
	// stable to read here.
	return ss.s.Cursor(), err
}

// runSubs serves every subscription tick due at or before the clock as it
// stood on entry. Each due group costs one catalog evaluation and one
// EvalCost clock advance no matter how many members watch it; members score
// the shared result against their own envelopes. A tick whose members all
// fail per-tick admission is skipped without evaluation (the backlogged
// case: shed provably-useless work), and each member's skipped tick is an
// expired cursor, visible to the client as a counted gap.
//
// Due-ness is measured against the entry snapshot, not the live clock: the
// evaluations themselves advance the clock, so a period at or below
// EvalCost would otherwise re-arm the group it just served and spin the
// apply loop forever (utilization ≥ 1 with issue advancing in lockstep with
// the clock — lateness never grows, so expiry never sheds it). Against the
// snapshot every group serves a bounded tick count per step, and a schedule
// the server cannot keep up with degrades the honest way: the backlog's
// lateness grows across steps until per-tick admission expires it.
func (s *Server) runSubs() {
	if s.subs.Len() == 0 {
		return
	}
	now := timeseq.Time(s.clock.Load())
	for {
		due := s.subs.Due(now)
		if len(due) == 0 {
			return
		}
		for _, g := range due {
			s.serveGroupTick(g)
		}
	}
}

// serveGroupTick runs (or admission-skips) one due tick of one group.
func (s *Server) serveGroupTick(g *sub.Group) {
	now := timeseq.Time(s.clock.Load())
	issue := g.Advance()
	finish := now + timeseq.Time(s.cfg.EvalCost)
	members := g.Members()

	anyAdmissible := false
	for _, m := range members {
		if m.Spec.Admissible(issue, finish) {
			anyAdmissible = true
			break
		}
	}
	if !anyAdmissible {
		for _, m := range members {
			m.AssignCursor()
			m.Expire()
			s.Metrics.PushScheduled.Add(1)
			s.Metrics.PushExpired.Add(1)
		}
		s.Metrics.AdmissionSkip.Add(1)
		return
	}

	s.sched.RunUntil(now)
	answers := s.cfg.Catalog[g.Key().Query](s.db.ViewNow())
	s.advance(finish)
	for _, m := range members {
		cur := m.AssignCursor()
		s.Metrics.PushScheduled.Add(1)
		if !m.Spec.Admissible(issue, finish) {
			m.Expire()
			s.Metrics.PushExpired.Add(1)
			continue
		}
		useful, _ := m.Spec.Score(issue, finish)
		p := sub.Push{
			Cursor: cur,
			// Expired is stamped before this tick's outcome is decided, so
			// it covers exactly the cursors below cur.
			Expired:   m.Expired(),
			Useful:    useful,
			Evaluated: true,
			Issue:     issue, Served: finish,
			Answers: answers,
		}
		if m.Q.Put(p) {
			s.Metrics.AccountPushDropped(1)
		}
	}
}
