package server

import (
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

// TestAdmissionBoundaries pins the §4.1 admission-control boundary cases:
// the deadline comparison is rel >= Deadline (a query whose relative
// deadline equals EvalCost provably completes at the deadline and is late),
// MinUseful == 0 means must-meet-deadline, and a soft query is admitted late
// exactly when its decayed usefulness still reaches MinUseful.
func TestAdmissionBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		evalCost uint64 // 0 = default (1); rel == EvalCost on an idle server
		q        QueryRequest

		evaluated, missed bool
		useful            uint64
		// exactly one of these metric counters must move
		hit, miss, noDeadline bool
		admissionSkip         bool
	}{
		{
			name: "firm deadline exactly at eval cost is late",
			q:    QueryRequest{Query: "status_q", Kind: deadline.Firm, Deadline: 1, MinUseful: 1},
			missed: true, miss: true, admissionSkip: true,
		},
		{
			name: "firm deadline one past eval cost is met",
			q:    QueryRequest{Query: "status_q", Kind: deadline.Firm, Deadline: 2, MinUseful: 1},
			evaluated: true, useful: 1, hit: true,
		},
		{
			name: "firm zero MinUseful means must-meet-deadline",
			q:    QueryRequest{Query: "status_q", Kind: deadline.Firm, Deadline: 1},
			missed: true, miss: true, admissionSkip: true,
		},
		{
			name: "soft late with no usefulness function decays to zero",
			q:    QueryRequest{Query: "status_q", Kind: deadline.Soft, Deadline: 1, MinUseful: 1},
			missed: true, miss: true, admissionSkip: true,
		},
		{
			// MinUseful == 0 means must-meet-deadline even though the decay
			// function still reports full usefulness at the deadline itself.
			name: "soft zero MinUseful means must-meet-deadline",
			q: QueryRequest{Query: "status_q", Kind: deadline.Soft, Deadline: 1,
				U: deadline.Hyperbolic(8, 1)}, // u(1) = max = 8, but skipped anyway
			missed: true, useful: 8, miss: true, admissionSkip: true,
		},
		{
			name:     "soft late but still useful enough is served",
			evalCost: 3,
			q: QueryRequest{Query: "status_q", Kind: deadline.Soft, Deadline: 2, MinUseful: 4,
				U: deadline.Hyperbolic(8, 2)}, // u(3) = 8/1 = 8 ≥ 4
			evaluated: true, useful: 8, hit: true,
		},
		{
			name:     "soft late with usefulness exactly at minimum is served",
			evalCost: 4,
			q: QueryRequest{Query: "status_q", Kind: deadline.Soft, Deadline: 2, MinUseful: 4,
				U: deadline.Hyperbolic(8, 2)}, // u(4) = 8/2 = 4 == MinUseful
			evaluated: true, useful: 4, hit: true,
		},
		{
			name:     "soft late below minimum usefulness is skipped",
			evalCost: 6,
			q: QueryRequest{Query: "status_q", Kind: deadline.Soft, Deadline: 2, MinUseful: 4,
				U: deadline.Hyperbolic(8, 2)}, // u(6) = 8/4 = 2 < 4
			missed: true, useful: 2, miss: true, admissionSkip: true,
		},
		{
			name: "class (i) no deadline is never late",
			q:    QueryRequest{Query: "status_q"},
			evaluated: true, noDeadline: true,
		},
		{
			name: "unknown query with a live deadline is a miss",
			q:    QueryRequest{Query: "no_such_q", Kind: deadline.Firm, Deadline: 10, MinUseful: 1},
			missed: true, miss: true,
		},
		{
			name: "unknown query without deadline is not a miss",
			q:    QueryRequest{Query: "no_such_q"},
			noDeadline: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.EvalCost = tc.evalCost
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Start()
			defer s.Stop()
			c := s.Session(0)
			if err := c.InjectSample("temp", "21"); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}

			before := s.Metrics.Snapshot()
			resp, err := c.Query(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			after := s.Metrics.Snapshot()

			if resp.Evaluated != tc.evaluated {
				t.Errorf("Evaluated = %v, want %v", resp.Evaluated, tc.evaluated)
			}
			if resp.Missed != tc.missed {
				t.Errorf("Missed = %v, want %v", resp.Missed, tc.missed)
			}
			if resp.Useful != tc.useful {
				t.Errorf("Useful = %d, want %d", resp.Useful, tc.useful)
			}
			ec := tc.evalCost
			if ec == 0 {
				ec = 1
			}
			if tc.evaluated && resp.Served != resp.Issue+timeseq.Time(ec) {
				t.Errorf("Served = %d, want issue %d + eval cost %d", resp.Served, resp.Issue, ec)
			}

			b2u := map[bool]uint64{false: 0, true: 1}
			if got, want := after.DeadlineHit-before.DeadlineHit, b2u[tc.hit]; got != want {
				t.Errorf("DeadlineHit moved %d, want %d", got, want)
			}
			if got, want := after.DeadlineMiss-before.DeadlineMiss, b2u[tc.miss]; got != want {
				t.Errorf("DeadlineMiss moved %d, want %d", got, want)
			}
			if got, want := after.NoDeadline-before.NoDeadline, b2u[tc.noDeadline]; got != want {
				t.Errorf("NoDeadline moved %d, want %d", got, want)
			}
			if got, want := after.AdmissionSkip-before.AdmissionSkip, b2u[tc.admissionSkip]; got != want {
				t.Errorf("AdmissionSkip moved %d, want %d", got, want)
			}
			// The conservation law holds case by case: the query landed in
			// exactly one terminal counter.
			if after.QueriesIn != after.QueriesAccounted() {
				t.Errorf("conservation violated: in=%d accounted=%d", after.QueriesIn, after.QueriesAccounted())
			}
		})
	}
}
