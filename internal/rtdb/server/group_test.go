package server

import (
	"testing"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	wal "rtc/internal/rtdb/log"
)

// TestGroupCommitAckBarrier: with group commit enabled the server must not
// acknowledge state-dependent work before the covering fsync. The window
// here is an hour long, so the test only passes if the server's own
// durability barriers seal it: Flush closes the open window, and a firm
// query's WAL record seals it at append. A server that forgot either
// barrier hangs here for the rest of the window.
func TestGroupCommitAckBarrier(t *testing.T) {
	mem := faultfs.NewMem(31)
	l, err := wal.Open(wal.Options{
		Dir: "wal", FS: mem, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20,
		Sync: true, GroupWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg := testConfig()
	cfg.Log = l
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)

	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	// Flush is a durability barrier: it must close the commit window and
	// return only after the sample's WAL record is fsynced.
	flushed := make(chan error, 1)
	go func() { flushed <- c.Flush() }()
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush stuck behind the open commit window: the barrier never sealed it")
	}
	if ds, sq := l.DurableSeq(), l.Seq(); ds != sq {
		t.Fatalf("Flush acked with DurableSeq=%d Seq=%d: replied before the fsync", ds, sq)
	}
	if st := l.Stats(); st.GroupCommits == 0 {
		t.Fatal("barrier flush never produced a group commit")
	}

	// A firm query's own WAL record seals the window (§4.1: firm acks stay
	// off the window's tail latency) — its reply must not wait out the hour.
	type result struct {
		resp Response
		err  error
	}
	answered := make(chan result, 1)
	go func() {
		resp, err := c.Query(QueryRequest{
			Query: "status_q", Candidate: "ok",
			Kind: deadline.Firm, Deadline: 1000, MinUseful: 1,
		})
		answered <- result{resp, err}
	}()
	select {
	case r := <-answered:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !r.resp.Match || r.resp.Missed {
			t.Fatalf("firm query under group commit: %+v", r.resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("firm query reply waited on the window: its firm append did not seal it")
	}
	if ds, sq := l.DurableSeq(), l.Seq(); ds != sq {
		t.Fatalf("firm reply with DurableSeq=%d Seq=%d: acked before its record's fsync", ds, sq)
	}
}
