package server

import (
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/relational"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
	"rtc/internal/rtdb"
)

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func testConfig() Config {
	return Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "22"},
			Derived: []*rtdb.DerivedObject{{
				Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
			}},
			Images: []*rtdb.ImageObject{{Name: "temp", Period: 5}},
		},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
			"temp_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest("temp"); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusDerive},
	}
}

func TestServeAperiodic(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)

	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Class (i): no deadline.
	resp, err := c.Query(QueryRequest{Query: "status_q", Candidate: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Match || !resp.Evaluated || resp.Missed {
		t.Fatalf("no-deadline query: %+v", resp)
	}

	// Class (ii): a generous firm deadline is met.
	resp, err = c.Query(QueryRequest{
		Query: "status_q", Candidate: "ok",
		Kind: deadline.Firm, Deadline: 10, MinUseful: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Match || resp.Missed {
		t.Fatalf("firm in-deadline query: %+v", resp)
	}

	m := s.Metrics.Snapshot()
	if m.DeadlineHit != 1 || m.NoDeadline != 1 || m.SamplesApplied != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.QueriesIn != m.QueriesAccounted() {
		t.Fatalf("conservation: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}
}

func TestAdmissionControlFirm(t *testing.T) {
	cfg := testConfig()
	cfg.EvalCost = 9 // evaluation takes longer than the deadline below
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)
	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	before := s.Now()
	resp, err := c.Query(QueryRequest{
		Query: "status_q", Candidate: "ok",
		Kind: deadline.Firm, Deadline: 4, MinUseful: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Missed || resp.Evaluated {
		t.Fatalf("provably-late firm query must be skipped: %+v", resp)
	}
	if s.Now() != before {
		t.Fatalf("admission skip must not spend EvalCost: clock %d → %d", before, s.Now())
	}
	m := s.Metrics.Snapshot()
	if m.AdmissionSkip != 1 || m.DeadlineMiss != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestSoftDeadlineUsefulness(t *testing.T) {
	cfg := testConfig()
	cfg.EvalCost = 6 // finishes at relative time 6, past the deadline of 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)
	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Linear decay from 8 over 8 chronons past t_d=4: at rel 6, u = 8-8*2/8 = 6.
	u := deadline.Linear(8, 4, 8)
	resp, err := c.Query(QueryRequest{
		Query: "status_q", Candidate: "ok",
		Kind: deadline.Soft, Deadline: 4, MinUseful: 5, U: u,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Missed || resp.Useful != 6 {
		t.Fatalf("soft still-useful query: %+v", resp)
	}

	// A higher bar turns the same lateness into an accounted miss, without
	// evaluation (admission control can tell in advance).
	resp, err = c.Query(QueryRequest{
		Query: "status_q", Candidate: "ok",
		Kind: deadline.Soft, Deadline: 4, MinUseful: 7, U: u,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Missed || resp.Evaluated {
		t.Fatalf("soft below-minimum query: %+v", resp)
	}
}

func TestBackpressureRejectsNotBlocks(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: nothing drains, so the bounded queue must fill and then
	// reject. Submissions never block.
	c := s.Session(0)
	rejected := 0
	for i := 0; i < 10; i++ {
		if err := c.InjectSample("temp", "20"); err == ErrBackpressure {
			rejected++
		}
	}
	if rejected != 6 {
		t.Fatalf("rejected %d of 10 submissions with depth 4, want 6", rejected)
	}
	// A firm query against the full queue is rejected with a miss, not
	// silently dropped and not blocked.
	resp, err := c.Query(QueryRequest{Query: "status_q", Kind: deadline.Firm, Deadline: 3, MinUseful: 1})
	if err != ErrBackpressure {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if !resp.Missed {
		t.Fatal("rejected firm query must report a miss")
	}
	m := s.Metrics.Snapshot()
	if m.SamplesRejected != 6 || m.QueriesRejected != 1 || m.RejectMiss != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.QueriesIn != m.QueriesAccounted() {
		t.Fatalf("conservation: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}
	s.Start()
	s.Stop()
}

func TestPeriodicScheduler(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPeriodic(PeriodicQuery{
		Name: "watch", Query: "status_q", Period: 5,
		Kind: deadline.Firm, Deadline: 3, MinUseful: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPeriodic(PeriodicQuery{Name: "bad", Query: "nope", Period: 5}); err == nil {
		t.Fatal("unknown catalog query must be rejected at registration")
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)
	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(48); err != nil {
		t.Fatal(err)
	}
	rep := s.PeriodicReport()
	if len(rep) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	w := rep[0]
	// Invocations at 0,5,10,… each served immediately (EvalCost 1 < 3).
	if w.Issued < 9 || w.Hit != w.Issued || w.Missed != 0 {
		t.Fatalf("well-provisioned periodic query: %+v", w)
	}
}

func TestPeriodicOverloadShedsWork(t *testing.T) {
	cfg := testConfig()
	cfg.EvalCost = 3 // each evaluation costs more than the period below
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterPeriodic(PeriodicQuery{
		Name: "hot", Query: "temp_q", Period: 2,
		Kind: deadline.Firm, Deadline: 2, MinUseful: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)
	if err := c.InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(40); err != nil {
		t.Fatal(err)
	}
	rep := s.PeriodicReport()[0]
	if rep.Missed == 0 {
		t.Fatalf("period 2 with EvalCost 3 must shed invocations: %+v", rep)
	}
	if rep.Issued != rep.Hit+rep.Missed {
		t.Fatalf("periodic accounting leak: %+v", rep)
	}
	m := s.Metrics.Snapshot()
	if m.PeriodicIssued != m.PeriodicHit+m.PeriodicMiss {
		t.Fatalf("metrics accounting leak: %+v", m)
	}
}

func TestAsOfReads(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotEvery = 1 // publish eagerly so the test can see history
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)

	if err := c.InjectSample("temp", "v0"); err != nil { // applied at chronon 0
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(9); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectSample("temp", "v10"); err != nil { // applied at chronon 10
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(5); err != nil {
		t.Fatal(err)
	}

	if v, ok := s.ValueAsOf("temp", 5); !ok || v != "v0" {
		t.Fatalf("ValueAsOf(5) = %q, %v", v, ok)
	}
	if v, ok := s.ValueAsOf("temp", 12); !ok || v != "v10" {
		t.Fatalf("ValueAsOf(12) = %q, %v", v, ok)
	}

	schema := relational.Schema{Name: "temp", Attrs: []relational.Attribute{"Object", "Value"}}
	q := relational.Project{
		Input: relational.From{Name: "temp", Schema: schema},
		Attrs: []relational.Attribute{"Value"},
	}
	rel, err := s.AsOf(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples(); len(got) != 1 || got[0][0] != "v0" {
		t.Fatalf("AsOf(5) tuples = %v", got)
	}
	if s.HistoryHorizon() == 0 {
		t.Fatal("no snapshot horizon published")
	}
	if m := s.Metrics.Snapshot(); m.AsOfReads != 3 {
		t.Fatalf("AsOfReads = %d, want 3", m.AsOfReads)
	}
}

func TestRulesFireOnInjectedSamples(t *testing.T) {
	cfg := testConfig()
	alarms := 0
	cfg.Rules = []rtdb.Rule{{
		Name: "alarm", On: "sample:temp", Mode: rtdb.Immediate,
		If:   func(db *rtdb.DB, e rtdb.Event) bool { return e.Attr["value"] > "24" },
		Then: func(db *rtdb.DB, e rtdb.Event) { alarms++ },
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c := s.Session(0)
	for _, v := range []string{"21", "25", "30", "22"} {
		if err := c.InjectSample("temp", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if alarms != 2 {
		t.Fatalf("alarms = %d, want 2", alarms)
	}
	if m := s.Metrics.Snapshot(); m.RuleFirings != 2 {
		t.Fatalf("RuleFirings = %d, want 2", m.RuleFirings)
	}
}

func TestWalAndRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := wal.Open(wal.Options{Dir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Log = l
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c := s.Session(0)
	for i := 0; i < 20; i++ {
		if err := c.InjectSample("temp", "v"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(QueryRequest{Query: "status_q", Candidate: "ok"}); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	refState := l.State()
	refHist := refState.Historical(refState.LastAt)
	img, _ := s.DB().Image("temp")
	refSamples := append([]rtdb.Sample{}, img.History()...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log must recover, and a server built over it must carry
	// the same catalog, history, and clock as the one that wrote it.
	l2, err := wal.Open(wal.Options{Dir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(l2.State(), refState) {
		t.Fatal("recovered log state differs from the writing server's state")
	}
	if !reflect.DeepEqual(l2.State().Historical(refState.LastAt), refHist) {
		t.Fatal("recovered historical database differs")
	}
	cfg2 := testConfig()
	cfg2.Log = l2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Now() != refState.LastAt {
		t.Fatalf("recovered clock = %d, want %d", s2.Now(), refState.LastAt)
	}
	img2, ok := s2.DB().Image("temp")
	if !ok {
		t.Fatal("image lost in recovery")
	}
	if !reflect.DeepEqual(img2.History(), refSamples) {
		t.Fatalf("recovered history differs:\n got %v\nwant %v", img2.History(), refSamples)
	}
	s2.Start()
	defer s2.Stop()
	resp, err := s2.Session(0).Query(QueryRequest{Query: "status_q", Candidate: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Evaluated || len(resp.Answers) == 0 {
		t.Fatalf("query after recovery: %+v", resp)
	}
}

// TestValueAsOfLongHistory pins the indexed as-of fast path to the
// relational evaluation it replaced: on a multi-hundred-sample history,
// ValueAsOf must agree with AsOf at every probe instant, including before
// the first sample and at the horizon.
func TestValueAsOfLongHistory(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotEvery = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	c := s.Session(0)

	const n = 300
	for i := 0; i < n; i++ {
		if err := c.InjectSample("temp", "v"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}

	schema := relational.Schema{Name: "temp", Attrs: []relational.Attribute{"Object", "Value"}}
	q := relational.Project{
		Input: relational.From{Name: "temp", Schema: schema},
		Attrs: []relational.Attribute{"Value"},
	}
	horizon := s.HistoryHorizon()
	if horizon == 0 {
		t.Fatal("no snapshot horizon")
	}
	for at := timeseq.Time(0); at <= horizon+2; at++ {
		v, ok := s.ValueAsOf("temp", at)
		rel, err := s.AsOf(q, at)
		if err != nil {
			t.Fatal(err)
		}
		tuples := rel.Tuples()
		if ok != (len(tuples) == 1) {
			t.Fatalf("at %d: ValueAsOf ok=%v but AsOf returned %d tuples", at, ok, len(tuples))
		}
		if ok && rtdb.Value(tuples[0][0]) != v {
			t.Fatalf("at %d: ValueAsOf=%q, AsOf=%q", at, v, tuples[0][0])
		}
		if at > horizon && ok {
			t.Fatalf("at %d: value %q served beyond horizon %d", at, v, horizon)
		}
	}
}
