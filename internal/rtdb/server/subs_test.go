package server

import (
	"errors"
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/sub"
)

// drain pops everything currently queued on ss.
func drain(ss *ServerSub) []sub.Push {
	var out []sub.Push
	for {
		p, _, ok := ss.Pop()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

func TestSubscribePeriodicDelivery(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	if err := s.Session(0).InjectSample("temp", "21"); err != nil {
		t.Fatal(err)
	}
	// Injection is asynchronous; the flush barrier makes sure the sample is
	// applied before the first tick evaluates.
	if err := s.Session(0).Flush(); err != nil {
		t.Fatal(err)
	}
	ss, err := s.Subscribe(sub.Spec{
		Query: "status_q", Period: 4,
		Kind: deadline.Firm, Deadline: 3, MinUseful: 1,
	}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Three periods of idle time: ticks at +4, +8, +12 from attach.
	if err := s.Tick(12); err != nil {
		t.Fatal(err)
	}
	got := drain(ss)
	if len(got) != 3 {
		t.Fatalf("got %d pushes, want 3", len(got))
	}
	for i, p := range got {
		if p.Cursor != uint64(i+1) {
			t.Fatalf("push %d: cursor %d, want %d", i, p.Cursor, i+1)
		}
		if p.Expired != 0 || !p.Evaluated {
			t.Fatalf("push %d: %+v", i, p)
		}
		if len(p.Answers) != 1 || p.Answers[0] != "ok" {
			t.Fatalf("push %d answers: %v", i, p.Answers)
		}
		if p.Served-p.Issue != 1 { // EvalCost 1, served at the due tick
			t.Fatalf("push %d stamps: issue %d served %d", i, p.Issue, p.Served)
		}
	}
	last, err := ss.Cancel()
	if err != nil || last != 3 {
		t.Fatalf("Cancel = (%d, %v), want (3, nil)", last, err)
	}

	m := s.Metrics.Snapshot()
	if m.SubsOpened != 1 || m.SubsClosed != 1 {
		t.Fatalf("subs opened/closed = %d/%d", m.SubsOpened, m.SubsClosed)
	}
	if m.PushScheduled != 3 || m.Pushed != 3 || m.PushAccounted() != m.PushScheduled {
		t.Fatalf("push conservation: scheduled %d, pushed %d, accounted %d",
			m.PushScheduled, m.Pushed, m.PushAccounted())
	}
}

// TestSubscribeGroupSharing: N subscribers on the same (query, period) cost
// one evaluation per tick — the clock advances by one EvalCost per tick, not
// per member — while each member gets its own cursored push.
func TestSubscribeGroupSharing(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	spec := sub.Spec{Query: "temp_q", Period: 5, Kind: deadline.Soft, Deadline: 4, MinUseful: 0}
	var subs []*ServerSub
	for i := 0; i < 3; i++ {
		ss, err := s.Subscribe(spec, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, ss)
	}
	before := s.Now()
	if err := s.Tick(5); err != nil {
		t.Fatal(err)
	}
	// One tick: the clock moved period + one EvalCost (the shared
	// evaluation), not period + 3 EvalCosts.
	if after := s.Now(); after != before+5+1 {
		t.Fatalf("clock after one shared tick: %d, want %d", after, before+6)
	}
	for i, ss := range subs {
		got := drain(ss)
		if len(got) != 1 || got[0].Cursor != 1 {
			t.Fatalf("member %d: pushes %+v", i, got)
		}
	}
	m := s.Metrics.Snapshot()
	if m.PushScheduled != 3 || m.Pushed != 3 {
		t.Fatalf("scheduled/pushed = %d/%d, want 3/3", m.PushScheduled, m.Pushed)
	}
}

func TestSubscribeRefusals(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	if _, err := s.Subscribe(sub.Spec{Query: "nope_q", Period: 4}, 0, 8); err == nil {
		t.Fatal("unknown catalog query must be refused")
	}
	if _, err := s.Subscribe(sub.Spec{Query: "status_q"}, 0, 8); err == nil {
		t.Fatal("zero period must be refused")
	}
	// EvalCost 1 ≥ firm deadline 1: even an on-time start finishes late.
	if _, err := s.Subscribe(sub.Spec{
		Query: "status_q", Period: 4, Kind: deadline.Firm, Deadline: 1, MinUseful: 1,
	}, 0, 8); !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("impossible firm envelope: err = %v, want ErrNotAdmissible", err)
	}
	// A deadline-free standing query at utilization ≥ 1 has nothing for
	// admission to shed and is refused outright.
	if _, err := s.Subscribe(sub.Spec{
		Query: "status_q", Period: 1, Kind: deadline.None,
	}, 0, 8); !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("deadline-free utilization ≥ 1: err = %v, want ErrNotAdmissible", err)
	}
	if n := s.Metrics.SubsOpened.Load(); n != 0 {
		t.Fatalf("refused subscriptions counted as opened: %d", n)
	}
}

// TestPerTickAdmissionExpiry: a tick that falls due while the clock is busy
// elsewhere (here: inside aperiodic evaluations) is re-checked against the
// translated deadline and expired without evaluation — a counted cursor
// gap, not a silent skip, and the next on-time tick carries the tally.
func TestPerTickAdmissionExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.EvalCost = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	ss, err := s.Subscribe(sub.Spec{
		Query: "status_q", Period: 5,
		Kind: deadline.Firm, Deadline: 4, MinUseful: 1,
	}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Two no-deadline queries push the clock to 6: the tick due at 5 is
	// now 1 late at start, finishing at 9 — 4 past issue, at the firm
	// deadline — so per-tick admission expires it without evaluating.
	for i := 0; i < 2; i++ {
		if _, err := s.Session(0).Query(QueryRequest{Query: "status_q"}); err != nil {
			t.Fatal(err)
		}
	}
	// Idle to the next tick at 10 (clock is at 6), served on time
	// (finish 13, 3 < 4).
	if err := s.Tick(4); err != nil {
		t.Fatal(err)
	}
	got := drain(ss)
	if len(got) != 1 {
		t.Fatalf("got %d pushes, want 1 (first tick expired)", len(got))
	}
	p := got[0]
	if p.Cursor != 2 || p.Expired != 1 {
		t.Fatalf("push after expiry: cursor %d expired %d, want 2/1", p.Cursor, p.Expired)
	}
	m := s.Metrics.Snapshot()
	if m.PushExpired != 1 || m.PushScheduled < 2 {
		t.Fatalf("expired/scheduled = %d/%d", m.PushExpired, m.PushScheduled)
	}
	// Client-side audit arithmetic: received == cursor − base − dropped − expired.
	if received := uint64(len(got)); received != p.Cursor-0-0-p.Expired {
		t.Fatalf("cursor audit: received %d, cursor %d, expired %d", received, p.Cursor, p.Expired)
	}
}

// TestDropOldestAccounting: a subscriber that never reads loses the oldest
// queued pushes, and cancel accounts the stragglers — the conservation law
// holds with zero deliveries.
func TestDropOldestAccounting(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	ss, err := s.Subscribe(sub.Spec{Query: "status_q", Period: 2, Kind: deadline.Soft, Deadline: 5}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(6); err != nil { // ticks at +2, +4, +6: three pushes into depth 1
		t.Fatal(err)
	}
	if _, err := ss.Cancel(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics.Snapshot()
	if m.PushScheduled != 3 || m.Pushed != 0 || m.PushDropped != 3 {
		t.Fatalf("scheduled/pushed/dropped = %d/%d/%d, want 3/0/3",
			m.PushScheduled, m.Pushed, m.PushDropped)
	}
	if m.PushAccounted() != m.PushScheduled {
		t.Fatalf("conservation: scheduled %d accounted %d", m.PushScheduled, m.PushAccounted())
	}
}

// TestSubscribeResumeContinuesCursor: attaching with after=N continues the
// cursor at N+1 — the resume path the transports build on.
func TestSubscribeResumeContinuesCursor(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	ss, err := s.Subscribe(sub.Spec{Query: "status_q", Period: 3, Kind: deadline.Soft, Deadline: 5}, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(3); err != nil {
		t.Fatal(err)
	}
	got := drain(ss)
	if len(got) != 1 || got[0].Cursor != 8 || got[0].Expired != 0 {
		t.Fatalf("resumed push: %+v", got)
	}
}

// TestPushMetricsRowsPinned: the push conservation rows ship under their
// pinned names — rtdbload and the spec suite read them remotely by name, so
// a rename is a cross-binary break, caught here.
func TestPushMetricsRowsPinned(t *testing.T) {
	var m Metrics
	m.SubsOpened.Add(2)
	m.PushScheduled.Add(5)
	m.Pushed.Add(3)
	m.PushDropped.Add(1)
	m.PushExpired.Add(1)
	rows := map[string]uint64{}
	for _, p := range m.Snapshot().Pairs() {
		rows[p.Name] = p.Value
	}
	want := map[string]uint64{
		"subs_opened": 2, "subs_closed": 0,
		"push_scheduled": 5, "pushed": 3,
		"push_dropped": 1, "push_expired": 1,
	}
	for name, v := range want {
		got, ok := rows[name]
		if !ok {
			t.Fatalf("pinned metrics row %q missing", name)
		}
		if got != v {
			t.Fatalf("row %q = %d, want %d", name, got, v)
		}
	}
}
