package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtwire"
)

// shardObjects is the differential keyspace: enough objects that every
// shard of an 8-way split owns a few.
func shardObjects(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("obj-%03d", i)
	}
	return out
}

// shardedSpecConfig builds a multi-object catalog: n images, one shared
// invariant, a derived object over one image (co-located by construction),
// one per-image latest-value query, and a rule bound to one image's sample
// stream (installed on every shard, firing only where its image lives).
func shardedSpecConfig(n int) (Config, map[string]string) {
	objs := shardObjects(n)
	spec := rtdb.Spec{
		Invariants: map[string]rtdb.Value{"limit": "50"},
	}
	for _, o := range objs {
		spec.Images = append(spec.Images, &rtdb.ImageObject{Name: o, Period: 5})
	}
	statusSrc := objs[3%n]
	spec.Derived = append(spec.Derived, &rtdb.DerivedObject{
		Name: "status", Sources: []string{statusSrc, "limit"}, Derive: statusDerive2(statusSrc),
	})
	cat := rtdb.Catalog{
		"status_q": func(v *rtdb.View) []rtdb.Value {
			if s, ok := v.DeriveNow("status"); ok {
				return []rtdb.Value{s}
			}
			return nil
		},
	}
	home := map[string]string{"status_q": statusSrc}
	for _, o := range objs {
		o := o
		cat["q-"+o] = func(v *rtdb.View) []rtdb.Value {
			if s, ok := v.Latest(o); ok {
				return []rtdb.Value{s.Value}
			}
			return nil
		}
		home["q-"+o] = o
	}
	rules := []rtdb.Rule{{
		Name: "mark", On: "sample:" + objs[0], Mode: rtdb.Immediate,
		If: func(db *rtdb.DB, e rtdb.Event) bool {
			v, _ := strconv.Atoi(e.Attr["value"])
			return v > 75
		},
		Then: func(db *rtdb.DB, e rtdb.Event) {},
	}}
	return Config{
		Spec:    spec,
		Catalog: cat,
		Registry: rtdb.DeriveRegistry{
			"status": statusDerive2(statusSrc),
		},
		Rules: rules,
	}, home
}

func statusDerive2(src string) func(map[string]rtdb.Value) rtdb.Value {
	return func(vals map[string]rtdb.Value) rtdb.Value {
		t, _ := strconv.Atoi(vals[src])
		l, _ := strconv.Atoi(vals["limit"])
		if t > l {
			return "high"
		}
		return "ok"
	}
}

// openShardLogs opens one WAL per shard under the conventional layout.
func openShardLogs(t testing.TB, base string, shards int, opt wal.Options) []*wal.Log {
	t.Helper()
	logs := make([]*wal.Log, shards)
	for i := range logs {
		o := opt
		o.Dir = ShardDir(base, i, shards)
		l, err := wal.Open(o)
		if err != nil {
			t.Fatalf("shard %d wal: %v", i, err)
		}
		logs[i] = l
	}
	return logs
}

func closeLogs(t testing.TB, logs []*wal.Log) {
	t.Helper()
	for i, l := range logs {
		if err := l.Close(); err != nil {
			t.Fatalf("close shard %d wal: %v", i, err)
		}
	}
}

// TestShardPlacement pins the spec split: every image lands on exactly the
// shard rtwire.ShardOf names, invariants exist everywhere, and the derived
// object rides with its image source.
func TestShardPlacement(t *testing.T) {
	const shards = 8
	cfg, home := shardedSpecConfig(16)
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: shards, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumShards() != shards {
		t.Fatalf("NumShards = %d", ss.NumShards())
	}
	for _, o := range shardObjects(16) {
		want := rtwire.ShardOf(o, shards)
		if got := ss.ShardFor(o); got != want {
			t.Fatalf("ShardFor(%q) = %d, want %d", o, got, want)
		}
		for i := 0; i < shards; i++ {
			_, ok := ss.Shard(i).DB().Image(o)
			if ok != (i == want) {
				t.Fatalf("image %q on shard %d: present=%v, want shard %d only", o, i, ok, want)
			}
		}
	}
	statusShard := rtwire.ShardOf(shardObjects(16)[3], shards)
	for i := 0; i < shards; i++ {
		_, ok := ss.Shard(i).DB().Derived("status")
		if ok != (i == statusShard) {
			t.Fatalf("derived status on shard %d: present=%v, want shard %d only", i, ok, statusShard)
		}
	}
	if got := ss.homeShard("status_q"); got != statusShard {
		t.Fatalf("homeShard(status_q) = %d, want %d", got, statusShard)
	}
}

// TestShardSplitRejectsSpanningDerived: a derived object whose image
// sources hash to different shards must be refused at construction, not
// silently mis-derived at run time.
func TestShardSplitRejectsSpanningDerived(t *testing.T) {
	// temp→shard 0 and pressure→shard 4 at 8 shards (pinned by the rtwire
	// golden routing test).
	cfg := Config{
		Spec: rtdb.Spec{
			Images: []*rtdb.ImageObject{{Name: "temp", Period: 5}, {Name: "pressure", Period: 5}},
			Derived: []*rtdb.DerivedObject{{
				Name: "span", Sources: []string{"temp", "pressure"},
				Derive: func(map[string]rtdb.Value) rtdb.Value { return "" },
			}},
		},
		Catalog: rtdb.Catalog{},
	}
	if _, err := NewSharded(ShardedConfig{Base: cfg, Shards: 8}); err == nil {
		t.Fatal("NewSharded accepted a derived object spanning shards")
	}
	// The same spec at one shard is fine: everything is co-located.
	if _, err := NewSharded(ShardedConfig{Base: cfg, Shards: 1}); err != nil {
		t.Fatalf("single-shard split: %v", err)
	}
}

// TestShardSingleByteIdentical is the degrade guarantee: the same driver
// sequence against a raw Server and a ShardedServer with Shards == 1 must
// leave byte-identical WAL directories — the sharded layer at N == 1 is a
// pass-through, adding no events, no reordering, no timestamp drift.
func TestShardSingleByteIdentical(t *testing.T) {
	dirRaw := filepath.Join(t.TempDir(), "wal-raw")
	dirSharded := filepath.Join(t.TempDir(), "wal-sharded")
	opt := wal.Options{SegmentSize: 4096, SnapshotEvery: 32}

	drive := func(c interface {
		InjectSample(image, value string) error
		Query(QueryRequest) (Response, error)
		Flush() error
	}, tick func(uint64) error) {
		for i := 0; i < 200; i++ {
			obj := shardObjects(16)[i%16]
			if err := c.InjectSample(obj, strconv.Itoa(i%100)); err != nil {
				t.Fatal(err)
			}
			// Flush before each query/tick: a raw server stamps a query's
			// issue with the clock at submit time, which races against how
			// far the apply loop got through the queued samples — quiescing
			// first makes both runs' issue stamps (and so the WAL bytes)
			// deterministic.
			if i%7 == 0 {
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Query(QueryRequest{
					Query: "q-" + obj, Kind: deadline.Firm, Deadline: 10, MinUseful: 1,
				}); err != nil {
					t.Fatal(err)
				}
			}
			if i%31 == 0 {
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := tick(3); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Raw single server.
	{
		o := opt
		o.Dir = dirRaw
		l, err := wal.Open(o)
		if err != nil {
			t.Fatal(err)
		}
		cfg, _ := shardedSpecConfig(16)
		cfg.Log = l
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterPeriodic(PeriodicQuery{
			Name: "watch", Query: "status_q", Period: 16,
			Kind: deadline.Firm, Deadline: 8, MinUseful: 1,
		}); err != nil {
			t.Fatal(err)
		}
		s.Start()
		drive(s.Session(0), s.Tick)
		s.Stop()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// ShardedServer with one shard over the same driver.
	{
		cfg, home := shardedSpecConfig(16)
		logs := openShardLogs(t, dirSharded, 1, opt)
		ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: 1, Logs: logs, QueryHome: home})
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.RegisterPeriodic(PeriodicQuery{
			Name: "watch", Query: "status_q", Period: 16,
			Kind: deadline.Firm, Deadline: 8, MinUseful: 1,
		}); err != nil {
			t.Fatal(err)
		}
		ss.Start()
		drive(ss.Session(0), ss.Tick)
		ss.Stop()
		closeLogs(t, logs)
	}

	rawFiles, err := os.ReadDir(dirRaw)
	if err != nil {
		t.Fatal(err)
	}
	shardedFiles, err := os.ReadDir(dirSharded)
	if err != nil {
		t.Fatal(err)
	}
	if len(rawFiles) != len(shardedFiles) {
		t.Fatalf("file counts differ: raw %d, sharded %d", len(rawFiles), len(shardedFiles))
	}
	for i, rf := range rawFiles {
		sf := shardedFiles[i]
		if rf.Name() != sf.Name() {
			t.Fatalf("file %d: %q vs %q", i, rf.Name(), sf.Name())
		}
		a, err := os.ReadFile(filepath.Join(dirRaw, rf.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirSharded, sf.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("WAL file %q differs between raw and sharded(1) runs (%d vs %d bytes)", rf.Name(), len(a), len(b))
		}
	}
}

// TestShardFlushHorizon: after Flush, the consistent horizon (min over
// shard horizons) has reached the routing clock at call time — an idle
// shard cannot pin the cross-shard cut in the past.
func TestShardFlushHorizon(t *testing.T) {
	cfg, home := shardedSpecConfig(16)
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: 8, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	defer ss.Stop()
	c := ss.Session(0)
	// Load exactly one object: seven shards stay idle.
	for i := 0; i < 64; i++ {
		if err := c.InjectSample("obj-000", strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	at := ss.Now()
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	if h := ss.HistoryHorizon(); h < at {
		t.Fatalf("horizon %d behind routing clock %d after Flush", h, at)
	}
	v, ok := ss.ValueAsOf("obj-000", at)
	if !ok || v != "63" {
		t.Fatalf("ValueAsOf(obj-000, %d) = %q, %v", at, v, ok)
	}
	// Idle objects answer too (no sample: not OK, but the read must not
	// error or block) and the owning shard agrees with the scatter path.
	if _, ok := ss.ValueAsOf("obj-001", at); ok {
		t.Fatal("idle object reported a value")
	}
}

// TestShardMetricsAggregate: the merged snapshot sums the per-shard blocks
// and the conservation laws hold on the sum exactly as they do per shard.
func TestShardMetricsAggregate(t *testing.T) {
	cfg, home := shardedSpecConfig(64)
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: 4, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	defer ss.Stop()
	c := ss.Session(0)
	objs := shardObjects(64)
	for i := 0; i < 128; i++ {
		if err := c.InjectSample(objs[i%64], strconv.Itoa(i%100)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if _, err := c.Query(QueryRequest{
				Query: "q-" + objs[i%64], Kind: deadline.Firm, Deadline: 12, MinUseful: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	m := ss.MetricsSnapshot()
	if m.SamplesApplied != 128 {
		t.Fatalf("merged SamplesApplied = %d, want 128", m.SamplesApplied)
	}
	if m.QueriesIn != 32 || m.QueriesIn != m.QueriesAccounted() {
		t.Fatalf("merged conservation: in=%d accounted=%d", m.QueriesIn, m.QueriesAccounted())
	}
	var perShard uint64
	shardsWithSamples := 0
	for i := 0; i < ss.NumShards(); i++ {
		sm := ss.Shard(i).Metrics.Snapshot()
		if sm.QueriesIn != sm.QueriesAccounted() {
			t.Fatalf("shard %d conservation: in=%d accounted=%d", i, sm.QueriesIn, sm.QueriesAccounted())
		}
		perShard += sm.SamplesApplied
		if sm.SamplesApplied > 0 {
			shardsWithSamples++
		}
	}
	if perShard != m.SamplesApplied {
		t.Fatalf("per-shard sum %d != merged %d", perShard, m.SamplesApplied)
	}
	if shardsWithSamples != 4 {
		t.Fatalf("only %d of 4 shards saw samples (routing collapsed?)", shardsWithSamples)
	}
}

// TestShardAmortizedCostGate is the deterministic form of the sharded
// throughput claim: on an op clock where one fsync costs 144µs and one
// write 2µs (measured ratios from the group-commit suite), the most loaded
// of 8 shards must carry at most a third of the total I/O cost — the
// wall-clock speedup of overlapping per-shard fsync pipelines is then ≥3×
// by construction, with no timer flake. What this actually gates is the
// router: a skewed or collapsed ShardOf re-serializes the keyspace behind
// one apply loop and the max shard's share rises toward the total.
func TestShardAmortizedCostGate(t *testing.T) {
	const (
		shards    = 8
		samples   = 1024
		syncCost  = 144_000 // ns per fsync, measured ratio vs write below
		writeCost = 2_000   // ns per write
	)
	cfg, home := shardedSpecConfig(64)
	mems := make([]*faultfs.Mem, shards)
	logs := make([]*wal.Log, shards)
	for i := range logs {
		mems[i] = faultfs.NewMem(uint64(i + 1))
		l, err := wal.Open(wal.Options{
			Dir: ShardDir("wal", i, shards), FS: mems[i],
			SegmentSize: 1 << 20, Sync: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: shards, Logs: logs, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline op counts after recovery/catalog installation.
	w0 := make([]uint64, shards)
	s0 := make([]uint64, shards)
	for i, m := range mems {
		w0[i], s0[i] = m.Writes(), m.Syncs()
	}
	ss.Start()
	c := ss.Session(0)
	objs := shardObjects(64)
	for i := 0; i < samples; i++ {
		for {
			err := c.InjectSample(objs[i%len(objs)], strconv.Itoa(i%100))
			if err == nil {
				break
			}
			if err != ErrBackpressure {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	ss.Stop()
	closeLogs(t, logs)

	var total, max uint64
	for i, m := range mems {
		cost := (m.Writes()-w0[i])*writeCost + (m.Syncs()-s0[i])*syncCost
		total += cost
		if cost > max {
			max = cost
		}
		t.Logf("shard %d: writes=%d syncs=%d cost=%dns", i, m.Writes()-w0[i], m.Syncs()-s0[i], cost)
	}
	if max == 0 || total == 0 {
		t.Fatal("no I/O recorded")
	}
	if speedup := float64(total) / float64(max); speedup < 3 {
		t.Fatalf("deterministic shard speedup %.2fx < 3x (max shard cost %d of %d total: skewed routing or serialized apply)",
			speedup, max, total)
	}
}

// TestShardRecovery: stop a sharded deployment, reopen the per-shard logs,
// and rebuild — every object's history survives on its own shard and the
// routing clock resumes at the recovered frontier.
func TestShardRecovery(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	opt := wal.Options{SegmentSize: 4096, SnapshotEvery: 16}
	cfg, home := shardedSpecConfig(16)
	objs := shardObjects(16)

	logs := openShardLogs(t, base, 4, opt)
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: 4, Logs: logs, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	c := ss.Session(0)
	for i := 0; i < 64; i++ {
		if err := c.InjectSample(objs[i%16], strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	wasNow := ss.Now()
	ss.Stop()
	closeLogs(t, logs)

	logs2 := openShardLogs(t, base, 4, opt)
	ss2, err := NewSharded(ShardedConfig{Base: cfg, Shards: 4, Logs: logs2, QueryHome: home})
	if err != nil {
		t.Fatal(err)
	}
	ss2.Start()
	defer func() {
		ss2.Stop()
		closeLogs(t, logs2)
	}()
	if ss2.Now() > wasNow {
		t.Fatalf("recovered routing clock %d beyond stopped clock %d", ss2.Now(), wasNow)
	}
	if err := ss2.Flush(); err != nil {
		t.Fatal(err)
	}
	h := ss2.HistoryHorizon()
	for i := 48; i < 64; i++ { // the newest write to each object
		obj := objs[i%16]
		v, ok := ss2.ValueAsOf(obj, h)
		if !ok || v != strconv.Itoa(i) {
			t.Fatalf("recovered %s as of %d = %q, %v; want %q", obj, h, v, ok, strconv.Itoa(i))
		}
	}
}
