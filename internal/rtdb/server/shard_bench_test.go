package server

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
)

// benchSharded builds an N-shard deployment over real per-shard WALs with
// per-append fsync — the configuration whose throughput sharding exists to
// multiply: each shard's fsync pipeline is an independent I/O wait, and N
// apply loops overlap them.
func benchSharded(b *testing.B, shards int, sync bool) (*ShardedServer, func()) {
	b.Helper()
	base := filepath.Join(b.TempDir(), "wal")
	logs := make([]*wal.Log, shards)
	for i := range logs {
		l, err := wal.Open(wal.Options{
			Dir:         ShardDir(base, i, shards),
			SegmentSize: 1 << 22,
			Sync:        sync,
		})
		if err != nil {
			b.Fatal(err)
		}
		logs[i] = l
	}
	cfg, home := shardedSpecConfig(64)
	cfg.Sessions = shards // one writer goroutine per shard
	cfg.QueueDepth = 1024
	ss, err := NewSharded(ShardedConfig{Base: cfg, Shards: shards, Logs: logs, QueryHome: home})
	if err != nil {
		b.Fatal(err)
	}
	ss.Start()
	return ss, func() {
		ss.Stop()
		for _, l := range logs {
			_ = l.Close()
		}
	}
}

// BenchmarkShardedAppend measures durable-append throughput (fsync per
// append) at 1, 4, and 8 shards: b.N samples spread over a 64-object
// keyspace, driven by one writer goroutine per shard so every shard's
// fsync pipeline stays saturated. Backpressure yields the processor
// instead of spinning — on small machines a hot spin starves the apply
// loops of CPU between fsyncs and hides the overlap this benchmark
// exists to show.
//
// The speedup tracks how well the backing store overlaps concurrent
// fsync streams: on NVMe-class devices 8 independent WAL pipelines reach
// >=3x a single pipeline; on a virtio disk whose host serializes flushes
// the aggregate sync rate caps near 3x a single stream and the measured
// ratio lands around 2.5x. TestShardAmortizedCostGate pins the >=3x
// claim deterministically on an op clock, independent of the device.
func BenchmarkShardedAppend(b *testing.B) {
	objs := shardObjects(64)
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			// The point is I/O overlap, not CPU parallelism: on a 1-core
			// CI box the default GOMAXPROCS=1 parks every fsync in a
			// syscall-handoff stall (sysmon retake latency), measuring
			// the scheduler instead of the database.
			if runtime.GOMAXPROCS(0) < shards {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(shards))
			}
			ss, done := benchSharded(b, shards, true)
			defer done()
			// Partition the keyspace by owner so each writer feeds
			// exactly one shard's queue.
			byShard := make([][]string, shards)
			for _, o := range objs {
				s := ss.ShardFor(o)
				byShard[s] = append(byShard[s], o)
			}
			var issued atomic.Int64
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for g := 0; g < shards; g++ {
				if len(byShard[g]) == 0 {
					continue
				}
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					c := ss.Session(g % ss.Sessions())
					mine := byShard[g]
					for i := 0; ; i++ {
						if issued.Add(1) > int64(b.N) {
							return
						}
						obj := mine[i%len(mine)]
						for c.InjectSample(obj, "21") == ErrBackpressure {
							// The queue is deep; parking briefly keeps it
							// topped up without contending for the CPU the
							// apply loop needs between fsyncs.
							time.Sleep(200 * time.Microsecond)
						}
					}
				}(g)
			}
			wg.Wait()
			if err := ss.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkShardedAsOf measures scatter-gather reads: consistent-horizon
// lookup plus a routed point read, against an 8-shard deployment with
// history on every shard.
func BenchmarkShardedAsOf(b *testing.B) {
	objs := shardObjects(64)
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			ss, done := benchSharded(b, shards, false)
			defer done()
			c := ss.Session(0)
			for i := 0; i < 4096; i++ {
				for c.InjectSample(objs[i%len(objs)], strconv.Itoa(i%100)) == ErrBackpressure {
				}
			}
			if err := ss.Flush(); err != nil {
				b.Fatal(err)
			}
			h := ss.HistoryHorizon()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if h2 := ss.HistoryHorizon(); h2 < h {
					b.Fatal("horizon regressed")
				}
				back := timeseq.Time(i % 64)
				if back > h {
					back = h
				}
				ss.ValueAsOf(objs[i%len(objs)], h-back)
			}
		})
	}
}
