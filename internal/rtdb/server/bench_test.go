package server

import (
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
)

func benchServer(b *testing.B, sessions int, log *wal.Log) *Server {
	b.Helper()
	cfg := testConfig()
	cfg.Sessions = sessions
	cfg.QueueDepth = 256
	cfg.Log = log
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	b.Cleanup(s.Stop)
	return s
}

func BenchmarkInjectSample(b *testing.B) {
	s := benchServer(b, 1, nil)
	c := s.Session(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c.InjectSample("temp", "21") == ErrBackpressure {
			// spin until the apply loop catches up
		}
	}
	_ = c.Flush()
}

func BenchmarkInjectSampleWAL(b *testing.B) {
	l, err := wal.Open(wal.Options{Dir: filepath.Join(b.TempDir(), "wal"), SegmentSize: 1 << 22})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s := benchServer(b, 1, l)
	c := s.Session(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c.InjectSample("temp", "21") == ErrBackpressure {
		}
	}
	_ = c.Flush()
}

func BenchmarkQueryFirm(b *testing.B) {
	s := benchServer(b, 1, nil)
	c := s.Session(0)
	if err := c.InjectSample("temp", "21"); err != nil {
		b.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	req := QueryRequest{Query: "status_q", Candidate: "ok",
		Kind: deadline.Firm, Deadline: 1 << 40, MinUseful: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentSessions(b *testing.B) {
	s := benchServer(b, 16, nil)
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c := s.Session(int(next.Add(1)-1) % 16)
		i := 0
		for pb.Next() {
			if i%4 == 3 {
				_, _ = c.Query(QueryRequest{Query: "temp_q"})
			} else {
				_ = c.InjectSample("temp", strconv.Itoa(15+i%15))
			}
			i++
		}
	})
}

// agedServer builds an unstarted server whose single image already holds
// `age` samples, injected directly through the database (the apply loop is
// bypassed so aging a million chronons takes milliseconds, not minutes).
// The clock sits at chronon age-1 with a fresh snapshot published.
func agedServer(b *testing.B, age int) *Server {
	b.Helper()
	s, err := New(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < age; i++ {
		t := timeseq.Time(i)
		s.sched.RunUntil(t)
		if err := s.db.InjectSample("temp", "v"+strconv.Itoa(i&1023)); err != nil {
			b.Fatal(err)
		}
		s.advance(t)
	}
	s.publishSnapshot()
	return s
}

// BenchmarkPublishAtAge measures one incremental publish with a one-sample
// delta at three server ages. The per-publish cost must stay flat as the
// history grows — publish is O(#images + delta), never O(total history).
func BenchmarkPublishAtAge(b *testing.B) {
	for _, bc := range []struct {
		name string
		age  int
	}{{"1k", 1_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		b.Run(bc.name, func(b *testing.B) {
			s := agedServer(b, bc.age)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := timeseq.Time(bc.age + i)
				s.sched.RunUntil(t)
				if err := s.db.InjectSample("temp", "w"); err != nil {
					b.Fatal(err)
				}
				s.advance(t)
				s.publishSnapshot()
			}
		})
	}
}

// BenchmarkQueryAtAge measures catalog-query evaluation (the serveQuery
// read path: cached view + binary-searched Latest) at three server ages.
func BenchmarkQueryAtAge(b *testing.B) {
	for _, bc := range []struct {
		name string
		age  int
	}{{"1k", 1_000}, {"100k", 100_000}, {"1M", 1_000_000}} {
		b.Run(bc.name, func(b *testing.B) {
			s := agedServer(b, bc.age)
			q := s.cfg.Catalog["temp_q"]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ans := q(s.db.ViewNow()); len(ans) != 1 {
					b.Fatalf("answers = %v", ans)
				}
			}
		})
	}
}

func BenchmarkAsOfRead(b *testing.B) {
	cfg := testConfig()
	cfg.SnapshotEvery = 1
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	b.Cleanup(s.Stop)
	c := s.Session(0)
	for i := 0; i < 64; i++ {
		if err := c.InjectSample("temp", "v"+strconv.Itoa(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	h := s.HistoryHorizon()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.ValueAsOf("temp", h/2); !ok {
			b.Fatal("missing value")
		}
	}
}
