package server

import (
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
)

func benchServer(b *testing.B, sessions int, log *wal.Log) *Server {
	b.Helper()
	cfg := testConfig()
	cfg.Sessions = sessions
	cfg.QueueDepth = 256
	cfg.Log = log
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	b.Cleanup(s.Stop)
	return s
}

func BenchmarkInjectSample(b *testing.B) {
	s := benchServer(b, 1, nil)
	c := s.Session(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c.InjectSample("temp", "21") == ErrBackpressure {
			// spin until the apply loop catches up
		}
	}
	_ = c.Flush()
}

func BenchmarkInjectSampleWAL(b *testing.B) {
	l, err := wal.Open(wal.Options{Dir: filepath.Join(b.TempDir(), "wal"), SegmentSize: 1 << 22})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	s := benchServer(b, 1, l)
	c := s.Session(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c.InjectSample("temp", "21") == ErrBackpressure {
		}
	}
	_ = c.Flush()
}

func BenchmarkQueryFirm(b *testing.B) {
	s := benchServer(b, 1, nil)
	c := s.Session(0)
	if err := c.InjectSample("temp", "21"); err != nil {
		b.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	req := QueryRequest{Query: "status_q", Candidate: "ok",
		Kind: deadline.Firm, Deadline: 1 << 40, MinUseful: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentSessions(b *testing.B) {
	s := benchServer(b, 16, nil)
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c := s.Session(int(next.Add(1)-1) % 16)
		i := 0
		for pb.Next() {
			if i%4 == 3 {
				_, _ = c.Query(QueryRequest{Query: "temp_q"})
			} else {
				_ = c.InjectSample("temp", strconv.Itoa(15+i%15))
			}
			i++
		}
	})
}

func BenchmarkAsOfRead(b *testing.B) {
	cfg := testConfig()
	cfg.SnapshotEvery = 1
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	b.Cleanup(s.Stop)
	c := s.Session(0)
	for i := 0; i < 64; i++ {
		if err := c.InjectSample("temp", "v"+strconv.Itoa(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	h := s.HistoryHorizon()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.ValueAsOf("temp", h/2); !ok {
			b.Fatal("missing value")
		}
	}
}
