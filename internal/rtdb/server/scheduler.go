package server

import (
	"fmt"
	"sync/atomic"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
)

// PeriodicQuery is a standing query re-issued every Period chronons — the
// serving counterpart of §5.1.3's pq words, scored invocation by
// invocation under the §4.1 discipline instead of all-or-nothing like
// language (10).
type PeriodicQuery struct {
	// Name identifies the registration in stats and the WAL.
	Name string
	// Query is the catalog query evaluated at each invocation.
	Query string
	// Issue is the first invocation's issue chronon; Period the spacing.
	Issue  timeseq.Time
	Period timeseq.Time
	// Kind, Deadline, MinUseful, U: the per-invocation deadline envelope,
	// as in QueryRequest (U over relative time since the invocation's
	// issue).
	Kind      deadline.Kind
	Deadline  timeseq.Time
	MinUseful uint64
	U         deadline.Usefulness
}

// PeriodicStats is one registration's tally.
type PeriodicStats struct {
	Name                string
	Issued, Hit, Missed uint64
}

// periodicState is the scheduler's bookkeeping for one registration.
// next is owned by the apply loop; the tallies are atomics so stats
// readers need no lock.
type periodicState struct {
	pq   PeriodicQuery
	next timeseq.Time

	issued, hit, miss atomic.Uint64
}

// RegisterPeriodic adds a standing periodic query. It must be called
// before Start.
func (s *Server) RegisterPeriodic(pq PeriodicQuery) error {
	if pq.Period == 0 {
		return fmt.Errorf("server: periodic query %q needs a positive period", pq.Name)
	}
	if _, ok := s.cfg.Catalog[pq.Query]; !ok {
		return fmt.Errorf("server: periodic query %q: unknown catalog query %q", pq.Name, pq.Query)
	}
	first := pq.Issue
	if now := s.Now(); first < now {
		first = now
	}
	s.periodic = append(s.periodic, &periodicState{pq: pq, next: first})
	return nil
}

// PeriodicReport returns each registration's tally, in registration order.
func (s *Server) PeriodicReport() []PeriodicStats {
	out := make([]PeriodicStats, 0, len(s.periodic))
	for _, ps := range s.periodic {
		out = append(out, PeriodicStats{
			Name:   ps.pq.Name,
			Issued: ps.issued.Load(),
			Hit:    ps.hit.Load(),
			Missed: ps.miss.Load(),
		})
	}
	return out
}

// runPeriodic serves every invocation due at or before the current clock.
// Admission control mirrors serveQuery: an invocation whose completion
// provably cannot reach the minimum usefulness is skipped without
// evaluation — its miss is accounted, its EvalCost is not spent, so a
// backlogged scheduler sheds provably-useless work instead of compounding
// the backlog (firm semantics under overload).
func (s *Server) runPeriodic() {
	for _, ps := range s.periodic {
		for {
			now := timeseq.Time(s.clock.Load())
			if ps.next > now {
				break
			}
			issue := ps.next
			ps.next += ps.pq.Period
			ps.issued.Add(1)
			s.Metrics.PeriodicIssued.Add(1)
			s.serveInvocation(ps, issue, now)
		}
	}
}

// serveInvocation runs (or admission-skips) one periodic invocation issued
// at issue, with the evaluation starting at now.
func (s *Server) serveInvocation(ps *periodicState, issue, now timeseq.Time) {
	q := QueryRequest{
		Query: ps.pq.Query, Kind: ps.pq.Kind, Deadline: ps.pq.Deadline,
		MinUseful: ps.pq.MinUseful, U: ps.pq.U,
	}
	finish := now + timeseq.Time(s.cfg.EvalCost)
	useful, late := usefulness(q, issue, finish)
	if late && (q.MinUseful == 0 || useful < q.MinUseful) {
		ps.miss.Add(1)
		s.Metrics.PeriodicMiss.Add(1)
		s.Metrics.AdmissionSkip.Add(1)
		return
	}
	s.sched.RunUntil(now)
	fn := s.cfg.Catalog[q.Query]
	fn(s.db.ViewNow())
	s.advance(finish)
	s.walAppend(wal.Query(issue, "periodic:"+ps.pq.Name, q.Query, "",
		uint64(q.Kind), uint64(q.Deadline), q.MinUseful))
	// Anything the admission test let through meets the discipline at
	// finish time (the clock only advanced to the estimate it tested).
	ps.hit.Add(1)
	s.Metrics.PeriodicHit.Add(1)
}
