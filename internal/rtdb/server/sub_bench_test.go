package server

import (
	"fmt"
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/sub"
)

func benchSpec() sub.Spec {
	return sub.Spec{
		Query: "status_q", Period: 1,
		Kind: deadline.Soft, Deadline: 1 << 40, MinUseful: 1,
	}
}

// BenchmarkSubTick is the end-to-end cost of one standing-query tick for a
// single subscriber: inject a sample (which advances the clock and makes the
// tick due), evaluate, queue, pop. The polled equivalent is BenchmarkQueryFirm
// plus an InjectSample — the delta is what the push machinery itself costs.
func BenchmarkSubTick(b *testing.B) {
	s := benchServer(b, 1, nil)
	c := s.Session(0)
	ss, err := s.Subscribe(benchSpec(), 0, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c.InjectSample("temp", "21") == ErrBackpressure {
		}
		for {
			if _, _, ok := ss.Pop(); !ok {
				break
			}
		}
	}
	b.StopTimer()
	_ = c.Flush()
	if _, err := ss.Cancel(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSubscribeFanout measures the grouped fan-out: N subscribers share
// one (query, period) group, so each clock advance costs one catalog
// evaluation plus N scorings, queue puts, and pops. Scaling N shows the
// per-member increment riding on the shared evaluation.
func BenchmarkSubscribeFanout(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			s := benchServer(b, 1, nil)
			c := s.Session(0)
			subs := make([]*ServerSub, n)
			for i := range subs {
				ss, err := s.Subscribe(benchSpec(), 0, 256)
				if err != nil {
					b.Fatal(err)
				}
				subs[i] = ss
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c.InjectSample("temp", "21") == ErrBackpressure {
				}
				for _, ss := range subs {
					for {
						if _, _, ok := ss.Pop(); !ok {
							break
						}
					}
				}
			}
			b.StopTimer()
			_ = c.Flush()
			for _, ss := range subs {
				if _, err := ss.Cancel(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
