package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"rtc/internal/deadline"
	"rtc/internal/relational"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/sub"
	"rtc/internal/timeseq"
	"rtc/internal/vtime"
)

// Config describes a server instance.
type Config struct {
	// Spec is the database catalog (invariant, image, derived objects).
	// Image Read functions are ignored: in served mode samples come from
	// client sessions, not from a simulated world.
	Spec rtdb.Spec
	// Catalog resolves query names to their semantics (§5.1.3).
	Catalog rtdb.Catalog
	// Registry re-binds derived-object computations by name after crash
	// recovery, like the acceptor's DeriveRegistry re-binds enc(D).
	Registry rtdb.DeriveRegistry
	// Rules are the active rules installed on the database.
	Rules []rtdb.Rule

	// Sessions is the number of client sessions served (default 1).
	Sessions int
	// QueueDepth bounds each session's request queue (default 64). A full
	// queue rejects instead of blocking.
	QueueDepth int
	// EvalCost is the number of chronons one query evaluation takes
	// (default 1) — the P_w cost model of §4.1.
	EvalCost uint64
	// SnapshotEvery publishes a HistoricalDatabase snapshot for as-of
	// reads every so many chronons (default 16).
	SnapshotEvery timeseq.Time
	// SubQueueDepth bounds each subscription's push delivery queue when the
	// subscriber does not choose its own (default 32). A full queue drops
	// the oldest queued push and counts it — never blocks the apply loop.
	SubQueueDepth int
	// Log, when set, write-ahead-logs catalog, samples, firings, and query
	// issues. If the log already holds state, the server recovers from it
	// and Spec's catalog is ignored.
	Log *wal.Log
}

func (c *Config) defaults() {
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.EvalCost == 0 {
		c.EvalCost = 1
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 16
	}
	if c.SubQueueDepth <= 0 {
		c.SubQueueDepth = 32
	}
}

// QueryRequest is one aperiodic query under the §4.1 deadline discipline.
type QueryRequest struct {
	Query     string
	Candidate rtdb.Value // optional; empty means "no candidate to match"
	Kind      deadline.Kind
	// Deadline is relative to the issue chronon (cases Firm and Soft).
	Deadline timeseq.Time
	// MinUseful is the minimum acceptable usefulness after the deadline.
	MinUseful uint64
	// U is the §4.1 usefulness decay, evaluated at *relative* time since
	// issue — pass e.g. deadline.Hyperbolic(max, relativeDeadline).
	U deadline.Usefulness
}

// Response is the server's answer to one aperiodic query.
type Response struct {
	Answers []rtdb.Value
	Match   bool // candidate ∈ answers (false when no candidate given)
	// Useful is the usefulness at service completion (max-valued before
	// the deadline; 0 for a missed firm deadline).
	Useful uint64
	// Missed reports a deadline miss: served at or past a firm deadline,
	// below minimum usefulness on a soft one, or rejected by backpressure
	// or admission control before evaluation.
	Missed bool
	// Evaluated is false when admission control skipped the evaluation.
	Evaluated bool
	// Issue and Served are the issue and completion chronons.
	Issue, Served timeseq.Time
}

// Errors reported by the session API.
var (
	// ErrBackpressure: the session queue is full. For deadline-carrying
	// queries the rejection is accounted as a deadline miss.
	ErrBackpressure = errors.New("server: session queue full")
	// ErrClosed: the server is stopping.
	ErrClosed = errors.New("server: closed")
)

type reqKind int

const (
	reqSample reqKind = iota
	reqQuery
	reqTick
	reqBarrier
	reqApply
)

type request struct {
	kind    reqKind
	session int
	// sample
	image, value string
	// query
	q     QueryRequest
	issue timeseq.Time
	// tick
	chronons uint64
	// stamped requests carry the chronon they must land at: the sharded
	// router stamps every routed request with its global routing clock so a
	// shard's local clock mirrors the single-shard clock for the traffic it
	// owns. The jump runs through tickTo, so periodic and subscription
	// invocations that fell due during another shard's turn still fire at
	// their own due chronons.
	at      timeseq.Time
	stamped bool
	// apply: an arbitrary closure run on the apply loop (subscription
	// attach/detach — anything that mutates apply-loop-owned state).
	do    func()
	reply chan Response
}

// histSnap is one published as-of snapshot.
type histSnap struct {
	at timeseq.Time
	db *rtdb.HistoricalDatabase
}

// Server serves concurrent sessions over one rtdb.DB.
type Server struct {
	cfg Config

	db       *rtdb.DB
	sched    *vtime.Scheduler
	clock    atomic.Uint64
	firings  int // length of db.FiringLog() already drained
	lastSnap timeseq.Time
	hist     atomic.Pointer[histSnap]

	// names is the sorted image-name list, computed once at construction
	// (the image set is fixed after New; refreshImageNames re-derives it if
	// that ever changes). publishSnapshot used to rebuild and re-sort it
	// every period.
	names []string
	// pubLen is each image's history length at its last capture; an image
	// whose length is unchanged is clean and its published relation is
	// shared by pointer into the next snapshot.
	pubLen map[string]int
	// sessLabels precomputes the "s<i>" WAL session labels.
	sessLabels []string

	// lastTicket is the newest WAL commit ticket the apply loop produced —
	// the durability frontier a barrier or query ack must wait behind when
	// the log batches fsyncs (group commit). Apply-loop-owned: only read
	// and written from step, never concurrently.
	lastTicket *wal.Ticket

	Metrics  Metrics
	periodic []*periodicState
	subs     *sub.Table

	inbox    chan request
	sessions []*Session
	quit     chan struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// New builds a server. If cfg.Log holds recovered state the database is
// rebuilt from it (load-or-recover); otherwise the catalog comes from
// cfg.Spec and is logged. Rules are installed after recovery so replayed
// samples do not re-fire them.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:   cfg,
		sched: vtime.New(),
		subs:  sub.NewTable(),
		inbox: make(chan request, cfg.Sessions),
		quit:  make(chan struct{}),
	}
	s.db = rtdb.New(s.sched)

	recovered := cfg.Log != nil && cfg.Log.State().Events > 0
	if recovered {
		st := cfg.Log.State()
		if err := st.Build(s.db, cfg.Registry); err != nil {
			return nil, err
		}
		if err := s.replaySamples(st); err != nil {
			return nil, err
		}
		s.sched.RunUntil(st.LastAt)
		s.clock.Store(uint64(st.LastAt))
		s.Metrics.Chronon.Store(uint64(st.LastAt))
	} else {
		s.installSpec()
	}
	for _, r := range cfg.Rules {
		s.db.AddRule(r)
	}
	// The pre-existing firing log (empty after recovery by construction —
	// rules were not installed during replay) is drained from zero.
	s.firings = len(s.db.FiringLog())
	s.refreshImageNames()
	s.pubLen = make(map[string]int, len(s.names))
	s.publishSnapshot()

	s.sessLabels = make([]string, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		s.sessLabels[i] = "s" + strconv.Itoa(i)
		s.sessions = append(s.sessions, &Session{
			id: i, srv: s, queue: make(chan request, cfg.QueueDepth),
		})
	}
	return s, nil
}

// installSpec installs and write-ahead-logs the catalog.
func (s *Server) installSpec() {
	sp := s.cfg.Spec
	names := make([]string, 0, len(sp.Invariants))
	for n := range sp.Invariants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.db.AddInvariant(n, sp.Invariants[n])
		s.walAppend(wal.Invariant(n, sp.Invariants[n]))
	}
	for _, o := range sp.Images {
		s.db.AddImage(&rtdb.ImageObject{Name: o.Name, Period: o.Period})
		s.walAppend(wal.Image(o.Name, o.Period))
	}
	for _, d := range sp.Derived {
		s.db.AddDerived(&rtdb.DerivedObject{Name: d.Name, Sources: d.Sources, Derive: d.Derive})
		s.walAppend(wal.Derived(d.Name, d.Sources...))
	}
}

// replaySamples re-injects recovered sample histories in timestamp order,
// advancing the virtual clock so every sample lands at its original time.
func (s *Server) replaySamples(st *wal.State) error {
	type rec struct {
		at    timeseq.Time
		image string
		value string
		seq   int
	}
	var all []rec
	for name, img := range st.Images {
		for i, smp := range img.Samples {
			all = append(all, rec{at: smp.At, image: name, value: smp.Value, seq: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].image != all[j].image {
			return all[i].image < all[j].image
		}
		return all[i].seq < all[j].seq
	})
	for _, r := range all {
		s.sched.RunUntil(r.at)
		if err := s.db.InjectSample(r.image, r.value); err != nil {
			return err
		}
	}
	return nil
}

// Start launches the apply loop and the session forwarders.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.applyLoop()
	for _, c := range s.sessions {
		s.wg.Add(1)
		go c.forward()
	}
}

// Stop shuts the server down: no new submissions are accepted, in-flight
// queue contents are abandoned (their callers unblock with ErrClosed), and
// the WAL is synced.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.closed.Store(true)
		close(s.quit)
		s.wg.Wait()
		if s.cfg.Log != nil {
			// A failed final sync means the tail of the log may not be
			// durable; it is counted, not swallowed.
			if err := s.cfg.Log.Sync(); err != nil {
				s.Metrics.WalErrors.Add(1)
			}
			s.syncLogStats()
		}
	})
}

// Session returns the i-th client session handle.
func (s *Server) Session(i int) *Session { return s.sessions[i] }

// Sessions returns the number of client sessions (the transport layer
// sizes its connection pool from it).
func (s *Server) Sessions() int { return len(s.sessions) }

// Now returns the current virtual time, lock-free.
func (s *Server) Now() timeseq.Time { return timeseq.Time(s.clock.Load()) }

// DB exposes the underlying database. It must only be touched while the
// server is stopped (the apply loop owns it while running).
func (s *Server) DB() *rtdb.DB { return s.db }

// WAL exposes the write-ahead log (nil when the server runs without one).
// The replication fan-out reads catch-up batches and subscribes to the live
// tail through it.
func (s *Server) WAL() *wal.Log { return s.cfg.Log }

// Epoch returns the node's fencing epoch: the WAL's persisted epoch, or 1
// for a log-less server (which can never be deposed, having no replica).
func (s *Server) Epoch() uint64 {
	if s.cfg.Log == nil {
		return 1
	}
	return s.cfg.Log.Epoch()
}

// Tick advances the virtual clock by n chronons through the apply loop —
// idle time during which periodic queries still fire. It blocks until
// applied.
func (s *Server) Tick(n uint64) error {
	reply := make(chan Response, 1)
	select {
	case s.inbox <- request{kind: reqTick, chronons: n, reply: reply}:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case <-reply:
		return nil
	case <-s.quit:
		return ErrClosed
	}
}

// TickTo advances the virtual clock to the absolute chronon at (a no-op if
// the clock is already past it) through the apply loop. The sharded layer
// uses it to pull idle shards up to the global routing clock so the
// cross-shard horizon never dangles behind a quiet lane.
func (s *Server) TickTo(at timeseq.Time) error {
	reply := make(chan Response, 1)
	select {
	case s.inbox <- request{kind: reqTick, stamped: true, at: at, reply: reply}:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case <-reply:
		return nil
	case <-s.quit:
		return ErrClosed
	}
}

// Barrier blocks until every request enqueued on the inbox before it has
// been applied.
func (s *Server) Barrier() error {
	reply := make(chan Response, 1)
	select {
	case s.inbox <- request{kind: reqBarrier, reply: reply}:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case <-reply:
		return nil
	case <-s.quit:
		return ErrClosed
	}
}

// applyLoop is the actor that owns the database and the clock.
func (s *Server) applyLoop() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.inbox:
			s.step(r)
		case <-s.quit:
			return
		}
	}
}

// step applies one request, advances the clock, runs due periodic
// invocations, and publishes as-of snapshots on period boundaries.
func (s *Server) step(r request) {
	now := timeseq.Time(s.clock.Load())
	if r.stamped && r.at > now {
		// A routed request from the sharded layer lands at its stamped
		// chronon: advance through the gap as idle time (periodic and
		// subscription dues fire at their own instants, exactly as they
		// would have while a single-shard clock served other objects).
		s.tickTo(r.at)
		now = r.at
	}
	s.sched.RunUntil(now)
	switch r.kind {
	case reqSample:
		if err := s.db.InjectSample(r.image, r.value); err == nil {
			s.Metrics.SamplesApplied.Add(1)
			s.walAppend(wal.Sample(now, r.image, r.value))
		}
		s.drainFirings(now)
		s.advance(now + 1)
	case reqQuery:
		resp := s.serveQuery(r, now)
		// The session's ack waits for the query's WAL issue record to be
		// fsynced (a no-op outside group-commit mode); a firm query sealed
		// the window in serveQuery, so its ack is not window-delayed.
		s.replyAfterDurable(r.reply, resp)
	case reqTick:
		s.tickTo(now + timeseq.Time(r.chronons))
		r.reply <- Response{Served: timeseq.Time(s.clock.Load())}
	case reqBarrier:
		// Flush is the durability barrier: close the open commit window so
		// the batch leader fsyncs now, and ack once it has.
		if t := s.lastTicket; t != nil && !t.Resolved() && s.cfg.Log != nil {
			s.cfg.Log.CloseWindow()
		}
		s.replyAfterDurable(r.reply, Response{Served: now})
	case reqApply:
		r.do()
		r.reply <- Response{Served: now}
	}
	s.runPeriodic()
	s.runSubs()
	s.maybePublish()
}

// tickTo advances idle time to target chronon by chronon with respect to
// the periodic schedule: each due invocation is served at its due time (not
// at the end of the jump), so idle ticks do not manufacture deadline misses.
func (s *Server) tickTo(target timeseq.Time) {
	for {
		now := timeseq.Time(s.clock.Load())
		if now >= target {
			return
		}
		due, pending := timeseq.Time(0), false
		for _, ps := range s.periodic {
			if !pending || ps.next < due {
				due, pending = ps.next, true
			}
		}
		if sd, ok := s.subs.NextDue(); ok && (!pending || sd < due) {
			due, pending = sd, true
		}
		if !pending || due > target {
			s.advance(target)
			return
		}
		if due > now {
			s.advance(due)
		}
		s.runPeriodic()
		s.runSubs()
	}
}

// advance moves the virtual clock to t and mirrors it into the metrics.
func (s *Server) advance(t timeseq.Time) {
	s.clock.Store(uint64(t))
	s.Metrics.Chronon.Store(uint64(t))
}

// serveQuery runs one aperiodic query under admission control. Evaluation
// costs EvalCost chronons; the deadline discipline is judged at completion
// time, mirroring P_m's comparison in §4.1.
func (s *Server) serveQuery(r request, now timeseq.Time) Response {
	finish := now + timeseq.Time(s.cfg.EvalCost)
	resp := Response{Issue: r.issue, Served: finish}

	useful, late := usefulness(r.q, r.issue, finish)
	if late && (r.q.MinUseful == 0 || useful < r.q.MinUseful) {
		// Admission control: completing the evaluation provably cannot
		// meet the discipline — skip the work, account the miss.
		resp.Missed = true
		resp.Useful = useful
		s.Metrics.AdmissionSkip.Add(1)
		s.Metrics.DeadlineMiss.Add(1)
		return resp
	}

	q, ok := s.cfg.Catalog[r.q.Query]
	if !ok {
		resp.Missed = r.q.Kind != deadline.None
		if resp.Missed {
			s.Metrics.DeadlineMiss.Add(1)
		} else {
			s.Metrics.NoDeadline.Add(1)
		}
		return resp
	}
	resp.Evaluated = true
	resp.Answers = q(s.db.ViewNow())
	if r.q.Candidate != "" {
		for _, a := range resp.Answers {
			if a == r.q.Candidate {
				resp.Match = true
				break
			}
		}
	}
	s.advance(finish)
	if s.cfg.Log != nil {
		s.walAppendFirm(wal.Query(r.issue, s.sessLabels[r.session], r.q.Query, r.q.Candidate,
			uint64(r.q.Kind), uint64(r.q.Deadline), r.q.MinUseful), r.q.Kind == deadline.Firm)
	}

	resp.Useful = useful
	switch {
	case r.q.Kind == deadline.None:
		s.Metrics.NoDeadline.Add(1)
	case late && (r.q.MinUseful == 0 || useful < r.q.MinUseful):
		resp.Missed = true
		s.Metrics.DeadlineMiss.Add(1)
	default:
		s.Metrics.DeadlineHit.Add(1)
	}
	return resp
}

// usefulness evaluates the §4.1 discipline for a query issued at issue and
// completed at finish: late reports the deadline passed, and the returned
// value is the usefulness at completion (relative time origin at issue).
func usefulness(q QueryRequest, issue, finish timeseq.Time) (useful uint64, late bool) {
	if q.Kind == deadline.None {
		return 0, false
	}
	rel := finish - issue
	late = rel >= q.Deadline
	switch {
	case !late:
		// Before the deadline usefulness is maximal; report MinUseful so
		// the admission test "useful ≥ MinUseful" is trivially met.
		useful = q.MinUseful
	case q.Kind == deadline.Soft && q.U != nil:
		useful = q.U(rel)
	default:
		useful = 0 // firm: equation (2), useless after t_d
	}
	return useful, late
}

// drainFirings write-ahead-logs rule firings since the last drain and
// updates the cascade metrics.
func (s *Server) drainFirings(now timeseq.Time) {
	logged := s.db.FiringLog()
	for _, f := range logged[s.firings:] {
		s.Metrics.RuleFirings.Add(1)
		rule := f
		if i := strings.IndexByte(f, ':'); i >= 0 {
			rule = f[i+1:]
		}
		s.walAppend(wal.Firing(now, rule))
	}
	s.firings = len(logged)
	if d := uint64(s.db.CascadeDepthMax()); d > s.Metrics.CascadeDepthMax.Load() {
		s.Metrics.CascadeDepthMax.Store(d)
	}
}

// walAppend appends one event when a log is configured, returning the
// commit ticket the caller may wait on for durability (nil when there is
// no log or the append was rejected). The append itself never blocks on
// the commit window — with group commit enabled the fsync happens later,
// and acks that require durability park on the ticket off the apply loop.
func (s *Server) walAppend(e wal.Event) *wal.Ticket {
	return s.walAppendFirm(e, false)
}

// walAppendFirm is walAppend with an immediate-flush request: firm seals
// the open commit window so a firm-deadline ack is never held hostage to
// the window's tail — the §4.1 admission promise extends through the WAL.
func (s *Server) walAppendFirm(e wal.Event, firm bool) *wal.Ticket {
	if s.cfg.Log == nil {
		return nil
	}
	t, err := s.cfg.Log.AppendTicket(e, firm)
	if err != nil {
		s.Metrics.WalErrors.Add(1)
		return nil
	}
	s.Metrics.WalAppends.Add(1)
	s.lastTicket = t
	return t
}

// replyAfterDurable delivers a response once the newest WAL append this
// request produced is fsynced — group commit's ack-after-fsync discipline.
// With no log, per-append fsync, or an already-committed batch the reply
// is immediate; otherwise a goroutine parks on the ticket so the apply
// loop keeps serving other sessions while the window fills. The reply
// channel is buffered, so the send cannot block even when the requester
// abandoned the wait at shutdown.
func (s *Server) replyAfterDurable(reply chan Response, resp Response) {
	if t := s.lastTicket; t != nil && !t.Resolved() {
		go func() {
			_ = t.Wait()
			reply <- resp
		}()
		return
	}
	reply <- resp
}

// syncLogStats copies the log's fsync counters into the metrics block.
func (s *Server) syncLogStats() {
	st := s.cfg.Log.Stats()
	s.Metrics.FsyncCount.Store(st.FsyncCount)
	s.Metrics.FsyncNanos.Store(st.FsyncNanos)
	s.Metrics.FsyncMaxNanos.Store(st.FsyncMaxNanos)
	s.Metrics.GroupCommits.Store(st.GroupCommits)
	s.Metrics.GroupedAppends.Store(st.GroupedAppends)
}

// maybePublish publishes a fresh HistoricalDatabase snapshot when the
// publication period elapsed.
func (s *Server) maybePublish() {
	now := timeseq.Time(s.clock.Load())
	if now >= s.lastSnap+s.cfg.SnapshotEvery || s.hist.Load() == nil {
		s.publishSnapshot()
	}
}

// publishSnapshot publishes the as-of view incrementally: the previous
// snapshot is cloned copy-on-write, images whose histories grew since
// their last capture get a fresh O(1) timeline capture, and clean images'
// relations are shared by pointer. The snapshot-level horizon extends
// every shared relation's newest value to the publication instant, so a
// quiet image still answers as-of reads up to the present. Publish cost is
// O(#images + delta), independent of total history — the flat-latency
// property the serving layer promises.
func (s *Server) publishSnapshot() {
	// Snapshot at the served clock, not the (possibly lagging) scheduler
	// clock, so the newest sample's validity extends to the present.
	now := timeseq.Time(s.clock.Load())
	s.sched.RunUntil(now)
	var out *rtdb.HistoricalDatabase
	if prev := s.hist.Load(); prev == nil {
		out = rtdb.NewHistoricalDatabase()
		for _, name := range s.imageNames() {
			img, _ := s.db.Image(name)
			out.Add(rtdb.FromLiveImage(img, now))
			s.pubLen[name] = len(img.History())
		}
	} else {
		out = prev.db.Clone()
		for _, name := range s.imageNames() {
			img, _ := s.db.Image(name)
			if n := len(img.History()); n != s.pubLen[name] {
				out.Add(rtdb.FromLiveImage(img, now))
				s.pubLen[name] = n
			}
		}
	}
	out.SetHorizon(now)
	s.hist.Store(&histSnap{at: now, db: out})
	s.lastSnap = now
}

// imageNames returns the sorted image-name list, cached at construction.
func (s *Server) imageNames() []string { return s.names }

// refreshImageNames re-derives the cached image-name list from the spec
// (or, after recovery, the WAL state). Call it again only if the image set
// ever changes after construction.
func (s *Server) refreshImageNames() {
	var names []string
	for _, o := range s.cfg.Spec.Images {
		names = append(names, o.Name)
	}
	if s.cfg.Log != nil {
		if st := s.cfg.Log.State(); len(st.Images) > 0 && len(names) == 0 {
			for n := range st.Images {
				names = append(names, n)
			}
			sort.Strings(names)
		}
	}
	s.names = names
}

// HistoryHorizon returns the time through which as-of reads are current.
func (s *Server) HistoryHorizon() timeseq.Time {
	if h := s.hist.Load(); h != nil {
		return h.at
	}
	return 0
}

// AsOf evaluates a relational query against the published snapshot at time
// t — §5.1.2's R(u, t) served without touching the write path.
func (s *Server) AsOf(q relational.Query, t timeseq.Time) (*relational.Relation, error) {
	h := s.hist.Load()
	if h == nil {
		return nil, fmt.Errorf("server: no snapshot published yet")
	}
	s.Metrics.AsOfReads.Add(1)
	return h.db.QueryAt(q, t)
}

// ValueAsOf returns an image object's value at time t from the published
// snapshot — a binary search over the image's captured timeline, so the
// read costs O(log history), allocation-free, at any server age.
func (s *Server) ValueAsOf(image string, t timeseq.Time) (rtdb.Value, bool) {
	h := s.hist.Load()
	if h == nil {
		return "", false
	}
	s.Metrics.AsOfReads.Add(1)
	return h.db.ValueAsOf(image, t)
}
