// Package sub is the standing-query subsystem of the rtdbd serving stack:
// a client registers a periodic query once (query name + period + per-tick
// deadline envelope) and the server evaluates it on the apply loop's
// periodic tick, pushing each invocation's stamped result instead of making
// the client poll. It is the serving counterpart of §5.1.3's pq words for
// the fan-out workload: many concurrent watchers with per-deadline
// guarantees over one evolving state (the real-time parallel model of
// PAPERS.md).
//
// The package owns the three mechanisms the transports share:
//
//   - Grouping: subscriptions with the same (query, period) share one
//     evaluation per tick — one catalog call, one EvalCost clock advance —
//     and fan the answers out to every member, each scored against its own
//     translated deadline envelope. One write, N watchers, O(1) evaluations.
//
//   - Cursors: every scheduled tick consumes exactly one monotone cursor
//     value per member, whether the result was delivered, dropped by the
//     bounded queue, or expired by per-tick admission. Because the delivery
//     queue is FIFO and drop-oldest discards from the head (the minimum
//     queued cursor), every cursor below a delivered push's is already
//     resolved when it arrives — so a client can audit delivery with plain
//     arithmetic: received == cursor − base − dropped − expired.
//
//   - Bounded drop-oldest delivery: a slow reader loses the oldest queued
//     tick, never the newest, and every loss is counted — the push
//     conservation law scheduled == pushed + dropped + expired is the
//     subscription-side extension of the server's QueriesIn == accounted
//     invariant.
//
// Ownership: Table, Group, and Sub bookkeeping (cursors, expiry tallies,
// group schedules) belong to the server's apply loop — single-writer, no
// locks. Queue is the only concurrent structure: the apply loop puts, one
// transport pump pops.
package sub

import (
	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

// Spec is one subscription's standing envelope, in server-relative terms:
// Deadline is the translated remaining deadline per tick (the transport
// already subtracted the client's consumed chronons, netserve's
// remaining = D − E), and U is the shifted decay U'(t) = U(t+E).
type Spec struct {
	Query  string
	Period timeseq.Time
	Kind   deadline.Kind
	// Deadline is relative to each tick's issue chronon.
	Deadline  timeseq.Time
	MinUseful uint64
	U         deadline.Usefulness
}

// Push is one tick result as the evaluator stamps it. Dropped is not here:
// it is stamped at send time by the transport from Queue.Pop's cumulative
// counter, because drops keep happening while a push waits in the queue.
type Push struct {
	// Cursor is the tick's monotone per-subscription cursor.
	Cursor uint64
	// Expired is the cumulative count of admission-expired ticks among this
	// attachment's cursors below Cursor, stamped at schedule time.
	Expired       uint64
	Useful        uint64
	Missed        bool
	Evaluated     bool
	Issue, Served timeseq.Time
	Answers       []string
}

// Score evaluates the §4.1 discipline for one tick issued at issue and
// completed at finish: late reports the deadline passed, and the returned
// value is the usefulness at completion (relative time origin at issue).
// It mirrors the server's aperiodic scoring exactly, so a standing query's
// tick and the equivalent polled query always land in the same outcome
// class.
func (s Spec) Score(issue, finish timeseq.Time) (useful uint64, late bool) {
	if s.Kind == deadline.None {
		return 0, false
	}
	rel := finish - issue
	late = rel >= s.Deadline
	switch {
	case !late:
		useful = s.MinUseful
	case s.Kind == deadline.Soft && s.U != nil:
		useful = s.U(rel)
	default:
		useful = 0 // firm: useless after the deadline
	}
	return useful, late
}

// Admissible reports whether a tick issued at issue and finishing at finish
// can meet the discipline — the same test the server's admission control
// applies to aperiodic queries: late completions survive only when a
// minimum usefulness is declared and the decay still clears it.
func (s Spec) Admissible(issue, finish timeseq.Time) bool {
	useful, late := s.Score(issue, finish)
	return !late || (s.MinUseful > 0 && useful >= s.MinUseful)
}
