package sub

import "sync"

// Queue is one subscriber's bounded delivery queue: a FIFO ring of stamped
// pushes between the apply loop (Put) and the transport pump (Pop). When
// the ring is full, Put discards the oldest queued push — the head, which
// holds the minimum queued cursor — and counts it. Dropping from the head
// is what keeps the cursor audit linear: by the time any push is delivered,
// every smaller cursor has already been delivered, dropped, or expired, so
// the cumulative counters reported alongside a push fully explain the gap
// below it.
type Queue struct {
	mu      sync.Mutex
	buf     []Push
	head, n int
	dropped uint64
	closed  bool
	notify  chan struct{}
}

// NewQueue builds a queue holding at most depth pushes (minimum 1).
func NewQueue(depth int) *Queue {
	if depth < 1 {
		depth = 1
	}
	return &Queue{
		buf:    make([]Push, depth),
		notify: make(chan struct{}, 1),
	}
}

// Put enqueues p, discarding the oldest queued push if the ring is full.
// It reports whether a push was discarded — by overflow, or because the
// queue is already closed (then p itself is the casualty) — so the caller
// can account every casualty as dropped and keep the conservation law
// airtight through teardown races.
func (q *Queue) Put(p Push) (dropped bool) {
	q.mu.Lock()
	if q.closed {
		q.dropped++
		q.mu.Unlock()
		return true
	}
	if q.n == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped++
		dropped = true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return dropped
}

// Pop dequeues the oldest push. droppedCum is the queue's cumulative drop
// count at the moment of the pop — the value the transport stamps into the
// outgoing frame, so the client's audit covers every drop that happened
// before this push left the server. ok is false when the queue is empty.
func (q *Queue) Pop() (p Push, droppedCum uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return Push{}, q.dropped, false
	}
	p = q.buf[q.head]
	q.buf[q.head] = Push{} // release answer slices
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p, q.dropped, true
}

// Notify returns the wake channel: Put and Close each post one token (if
// none is pending), so a pump can sleep on it and drain on wake.
func (q *Queue) Notify() <-chan struct{} { return q.notify }

// Len returns the number of queued pushes.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Dropped returns the cumulative drop count.
func (q *Queue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Closed reports whether Close was called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Close discards everything still queued and returns how many pushes it
// discarded (already added to the cumulative drop count); later Puts count
// themselves as dropped. The caller accounts the discards so undelivered
// ticks stay visible in the server's books at teardown.
func (q *Queue) Close() (discarded int) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0
	}
	q.closed = true
	discarded = q.n
	q.dropped += uint64(q.n)
	for i := range q.buf {
		q.buf[i] = Push{}
	}
	q.head, q.n = 0, 0
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return discarded
}
