package sub

import (
	"testing"

	"rtc/internal/deadline"
)

func TestQueueFIFOAndDropOldest(t *testing.T) {
	q := NewQueue(3)
	for c := uint64(1); c <= 5; c++ {
		dropped := q.Put(Push{Cursor: c})
		if want := c > 3; dropped != want {
			t.Fatalf("Put(%d): dropped = %v, want %v", c, dropped, want)
		}
	}
	// Cursors 1 and 2 were dropped from the head; 3, 4, 5 remain in order.
	if got := q.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	for want := uint64(3); want <= 5; want++ {
		p, cum, ok := q.Pop()
		if !ok || p.Cursor != want || cum != 2 {
			t.Fatalf("Pop() = (%d, %d, %v), want (%d, 2, true)", p.Cursor, cum, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestQueueCloseAccountsEverything(t *testing.T) {
	q := NewQueue(4)
	q.Put(Push{Cursor: 1})
	q.Put(Push{Cursor: 2})
	if n := q.Close(); n != 2 {
		t.Fatalf("Close discarded %d, want 2", n)
	}
	if !q.Closed() {
		t.Fatal("queue not closed")
	}
	// A Put racing with teardown counts itself as dropped: the tick stays
	// accounted even though nobody will ever pop it.
	if !q.Put(Push{Cursor: 3}) {
		t.Fatal("Put after Close must report dropped")
	}
	if got := q.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if n := q.Close(); n != 0 {
		t.Fatalf("second Close discarded %d, want 0", n)
	}
}

func TestQueueNotify(t *testing.T) {
	q := NewQueue(2)
	select {
	case <-q.Notify():
		t.Fatal("spurious wake")
	default:
	}
	q.Put(Push{Cursor: 1})
	select {
	case <-q.Notify():
	default:
		t.Fatal("Put did not post a wake token")
	}
}

func TestTableGroupingAndCursors(t *testing.T) {
	tab := NewTable()
	spec := Spec{Query: "status_q", Period: 4, Kind: deadline.Firm, Deadline: 2}
	a := tab.Attach(spec, 0, 8, 100)
	b := tab.Attach(spec, 0, 8, 100)
	c := tab.Attach(Spec{Query: "status_q", Period: 8}, 0, 8, 100)
	if tab.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tab.Len())
	}
	// Same (query, period) shares a group; a different period does not.
	if a.g != b.g || a.g == c.g {
		t.Fatal("grouping by (query, period) violated")
	}
	if due, ok := tab.NextDue(); !ok || due != 104 {
		t.Fatalf("NextDue() = (%d, %v), want (104, true)", due, ok)
	}
	groups := tab.Due(104)
	if len(groups) != 1 || groups[0] != a.g {
		t.Fatalf("Due(104) = %v groups, want exactly a's", len(groups))
	}
	if issue := a.g.Advance(); issue != 104 || a.g.Next() != 108 {
		t.Fatalf("Advance: issue %d next %d, want 104/108", issue, a.g.Next())
	}

	// Cursor discipline: assign, stamp expired-before, then maybe expire.
	if cur := a.AssignCursor(); cur != 1 {
		t.Fatalf("first cursor = %d, want 1", cur)
	}
	before := a.Expired()
	a.Expire()
	if before != 0 || a.Expired() != 1 {
		t.Fatalf("expired before/after = %d/%d, want 0/1", before, a.Expired())
	}

	tab.Detach(a)
	tab.Detach(c)
	if tab.Len() != 1 {
		t.Fatalf("Len() after detach = %d, want 1", tab.Len())
	}
	// b keeps the group alive; detaching it deletes the group.
	tab.Detach(b)
	if _, ok := tab.NextDue(); ok {
		t.Fatal("empty table still reports a due tick")
	}
	tab.Detach(b) // idempotent
}

func TestTableResumeContinuesCursor(t *testing.T) {
	tab := NewTable()
	spec := Spec{Query: "temp_q", Period: 2}
	s := tab.Attach(spec, 41, 8, 10)
	if s.Base() != 41 || s.Cursor() != 41 {
		t.Fatalf("resume base/cursor = %d/%d, want 41/41", s.Base(), s.Cursor())
	}
	if cur := s.AssignCursor(); cur != 42 {
		t.Fatalf("resumed first cursor = %d, want 42", cur)
	}
	if s.Expired() != 0 {
		t.Fatal("resume must start a fresh expiry tally")
	}
}

func TestScoreMatchesDiscipline(t *testing.T) {
	firm := Spec{Kind: deadline.Firm, Deadline: 5, MinUseful: 1}
	if u, late := firm.Score(100, 104); late || u != 1 {
		t.Fatalf("firm in time: (%d, %v)", u, late)
	}
	if u, late := firm.Score(100, 105); !late || u != 0 {
		t.Fatalf("firm at deadline: (%d, %v)", u, late)
	}
	if firm.Admissible(100, 105) {
		t.Fatal("late firm tick must not be admissible")
	}

	soft := Spec{
		Kind: deadline.Soft, Deadline: 5, MinUseful: 2,
		U: deadline.Hyperbolic(10, 5),
	}
	if u, late := soft.Score(100, 107); !late || u != 5 {
		t.Fatalf("soft decayed: (%d, %v), want (5, true)", u, late)
	}
	if !soft.Admissible(100, 107) {
		t.Fatal("decayed-but-useful soft tick must be admissible")
	}
	if soft.Admissible(100, 120) {
		t.Fatal("fully decayed soft tick must not be admissible")
	}

	none := Spec{Kind: deadline.None}
	if !none.Admissible(0, 1000) {
		t.Fatal("no-deadline ticks are always admissible")
	}
}
