package sub

import (
	"testing"

	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

// BenchmarkQueuePutPop is the per-push cost of the bounded delivery queue on
// its hot path: one evaluator put, one transport pop, no contention.
func BenchmarkQueuePutPop(b *testing.B) {
	q := NewQueue(64)
	p := Push{Cursor: 1, Useful: 1, Evaluated: true, Answers: []string{"high"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Cursor = uint64(i + 1)
		q.Put(p)
		if _, _, ok := q.Pop(); !ok {
			b.Fatal("pop missed a queued push")
		}
	}
}

// BenchmarkQueueDropOldest measures the shed path: a full queue dropping its
// head on every put, the slow-reader steady state.
func BenchmarkQueueDropOldest(b *testing.B) {
	q := NewQueue(4)
	p := Push{Cursor: 1, Useful: 1, Evaluated: true}
	for i := 0; i < 4; i++ {
		q.Put(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Cursor = uint64(i + 5)
		if !q.Put(p) {
			b.Fatal("full queue did not drop")
		}
	}
}

// BenchmarkSpecScore is the per-tick scoring cost a subscription member adds
// on top of the shared evaluation — exercised on the decayed-soft branch,
// the most expensive outcome class.
func BenchmarkSpecScore(b *testing.B) {
	s := Spec{
		Query: "q", Period: 2, Kind: deadline.Soft, Deadline: 8, MinUseful: 3,
		U: deadline.Hyperbolic(10, 8),
	}
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		useful, _ := s.Score(0, timeseq.Time(8+i%4))
		sink += useful
	}
	_ = sink
}
