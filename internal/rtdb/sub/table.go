package sub

import "rtc/internal/timeseq"

// Key identifies an evaluation group: subscriptions naming the same catalog
// query at the same period share one evaluation per tick regardless of
// their deadline envelopes (those are scored per member, which costs
// nothing — only the catalog call and its EvalCost are shared).
type Key struct {
	Query  string
	Period timeseq.Time
}

// Group is one evaluation group. Owned by the apply loop.
type Group struct {
	key     Key
	next    timeseq.Time
	members []*Sub
}

// Key returns the group's identity.
func (g *Group) Key() Key { return g.key }

// Next returns the group's next due tick.
func (g *Group) Next() timeseq.Time { return g.next }

// Advance consumes the due tick: it returns the tick's issue time and
// schedules the next one.
func (g *Group) Advance() (issue timeseq.Time) {
	issue = g.next
	g.next += g.key.Period
	return issue
}

// Members returns the group's member slice (owned by the apply loop; do not
// retain across table mutations).
func (g *Group) Members() []*Sub { return g.members }

// Sub is one attached subscription. Cursor and expiry bookkeeping are owned
// by the apply loop; Q is the only field transports touch concurrently.
type Sub struct {
	Spec Spec
	Q    *Queue

	cursor  uint64 // last assigned cursor (== base right after attach)
	base    uint64 // cursor base of this attachment (AfterCursor on resume)
	expired uint64 // cumulative admission-expired ticks this attachment
	g       *Group
}

// Cursor returns the last assigned cursor.
func (s *Sub) Cursor() uint64 { return s.cursor }

// Base returns this attachment's cursor base.
func (s *Sub) Base() uint64 { return s.base }

// Expired returns the cumulative expired count for this attachment — the
// value stamped into a push scheduled now covers exactly the cursors below
// it, because expiry for the current cursor is decided after the stamp.
func (s *Sub) Expired() uint64 { return s.expired }

// AssignCursor consumes the next cursor value for a scheduled tick.
func (s *Sub) AssignCursor() uint64 {
	s.cursor++
	return s.cursor
}

// Expire records the current cursor's tick as admission-expired.
func (s *Sub) Expire() { s.expired++ }

// Table is the set of live subscriptions, grouped for shared evaluation.
// Owned by the apply loop.
type Table struct {
	groups map[Key]*Group
	n      int
}

// NewTable builds an empty table.
func NewTable() *Table {
	return &Table{groups: make(map[Key]*Group)}
}

// Len returns the number of attached subscriptions.
func (t *Table) Len() int { return t.n }

// Attach adds a subscription and returns its handle. after is the cursor to
// continue from (0 for a fresh subscription; the client's newest cursor on
// a resume — delivery then continues at after+1, so cursors stay strictly
// increasing across attachments and no acknowledged tick is replayed).
// A new group's first tick is due one period after now; joining an existing
// group adopts its schedule, so co-grouped members tick in lockstep.
func (t *Table) Attach(spec Spec, after uint64, depth int, now timeseq.Time) *Sub {
	k := Key{Query: spec.Query, Period: spec.Period}
	g, ok := t.groups[k]
	if !ok {
		g = &Group{key: k, next: now + spec.Period}
		t.groups[k] = g
	}
	s := &Sub{Spec: spec, Q: NewQueue(depth), cursor: after, base: after, g: g}
	g.members = append(g.members, s)
	t.n++
	return s
}

// Detach removes a subscription; the last member out deletes the group.
// The caller still owns s.Q and is responsible for closing it (and
// accounting what Close discards).
func (t *Table) Detach(s *Sub) {
	g := s.g
	if g == nil {
		return
	}
	s.g = nil
	for i, m := range g.members {
		if m == s {
			g.members = append(g.members[:i], g.members[i+1:]...)
			t.n--
			break
		}
	}
	if len(g.members) == 0 {
		delete(t.groups, g.key)
	}
}

// NextDue returns the earliest due tick over all groups.
func (t *Table) NextDue() (timeseq.Time, bool) {
	var due timeseq.Time
	pending := false
	for _, g := range t.groups {
		if !pending || g.next < due {
			due, pending = g.next, true
		}
	}
	return due, pending
}

// Due returns the groups due at or before now. The slice is freshly
// allocated; group order is unspecified (ticks at equal times are
// independent evaluations).
func (t *Table) Due(now timeseq.Time) []*Group {
	var out []*Group
	for _, g := range t.groups {
		if g.next <= now {
			out = append(out, g)
		}
	}
	return out
}
