package rtdb

import (
	"strconv"
	"testing"

	"rtc/internal/core"
	"rtc/internal/deadline"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/vtime"
	"rtc/internal/word"
)

// testSpec builds the running example: image "temp" (period 5), invariant
// "limit", derived "status".
func testSpec() Spec {
	return Spec{
		Invariants: map[string]Value{"limit": "22"},
		Derived: []*DerivedObject{{
			Name:    "status",
			Sources: []string{"temp", "limit"},
			Derive:  statusDerive,
		}},
		Images: []*ImageObject{{Name: "temp", Period: 5, Read: tempRead}},
	}
}

func statusDerive(src map[string]Value) Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func testCatalog() Catalog {
	return Catalog{
		"status_q": func(v *View) []Value {
			if s, ok := v.DeriveNow("status"); ok {
				return []Value{s}
			}
			return nil
		},
		"temp_q": func(v *View) []Value {
			if s, ok := v.Latest("temp"); ok {
				return []Value{s.Value}
			}
			return nil
		},
	}
}

func testRegistry() DeriveRegistry {
	return DeriveRegistry{"status": statusDerive}
}

func TestDB0WordShape(t *testing.T) {
	sp := testSpec()
	w := sp.DB0Word()
	recs, ok := encoding.Records(w.Syms())
	if !ok || len(recs) != 2 {
		t.Fatalf("records = %v, %v", recs, ok)
	}
	if recs[0][0] != "V" || recs[0][1] != "limit" || recs[0][2] != "22" {
		t.Fatalf("V record = %v", recs[0])
	}
	if recs[1][0] != "D" || recs[1][1] != "status" {
		t.Fatalf("D record = %v", recs[1])
	}
	for _, e := range w {
		if e.At != 0 {
			t.Fatal("db_0 must be specified at time 0")
		}
	}
}

func TestDBkWordShape(t *testing.T) {
	o := &ImageObject{Name: "temp", Period: 5, Read: tempRead}
	w := DBkWord(o)
	p := word.Prefix(w, 40)
	// Group symbols by timestamp: each group must parse as one I record
	// with the right value.
	byTime := map[timeseq.Time][]word.Symbol{}
	for _, e := range p {
		byTime[e.At] = append(byTime[e.At], e.Sym)
	}
	for _, at := range []timeseq.Time{0, 5, 10} {
		rec, ok := encoding.ParseRecord(byTime[at])
		if !ok || rec[0] != "I" || rec[1] != "temp" || rec[2] != tempRead(at) {
			t.Fatalf("record at %d = %v (%v)", at, rec, ok)
		}
	}
	if !word.MonotoneWithin(w, 100) {
		t.Error("db_k not monotone")
	}
	if !word.WellBehavedWithin(w, 100) {
		t.Error("db_k should look well behaved")
	}
}

func TestDBWordMergesStreams(t *testing.T) {
	sp := testSpec()
	w := sp.DBWord()
	p := word.PrefixUntil(w, 0, 1000)
	// At time 0: db_0's records then temp's first sample.
	recs, ok := encoding.Records(word.Finite(p).Syms())
	if !ok || len(recs) != 3 {
		t.Fatalf("time-0 records = %v (%v)", recs, ok)
	}
	if recs[2][0] != "I" {
		t.Fatalf("expected I record last at time 0: %v", recs)
	}
}

func TestAqWordShape(t *testing.T) {
	qs := QuerySpec{Query: "status_q", Issue: 7, Candidate: "ok", Kind: deadline.None}
	w := qs.AqWord()
	p := word.Prefix(w, 40)
	if p[0].At != 7 {
		t.Fatalf("header at %d, want issue time 7", p[0].At)
	}
	recs, ok := encoding.Records(word.Finite(word.PrefixUntil(w, 7, 100)).Syms())
	if !ok || len(recs) != 2 || recs[0][0] != "s" || recs[1][0] != "q" {
		t.Fatalf("header records = %v (%v)", recs, ok)
	}
	// Markers are subscripted with the issue time.
	found := false
	for _, e := range p {
		if e.Sym == wMarker(7) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no w@7 marker in %v", p)
	}
}

func TestAqWordDeadlineMarkers(t *testing.T) {
	qs := QuerySpec{
		Query: "status_q", Issue: 4, Candidate: "ok",
		Kind: deadline.Firm, Deadline: 3, MinUseful: 1,
	}
	p := word.Prefix(qs.AqWord(), 24)
	sawW, sawD := false, false
	for _, e := range p {
		if k, issue, ok := markerIssue(e.Sym); ok {
			if issue != 4 {
				t.Fatalf("marker with wrong issue: %v", e)
			}
			if k == 'w' {
				sawW = true
				if e.At >= 7 {
					t.Fatalf("w marker at %d, after the absolute deadline 7", e.At)
				}
			}
			if k == 'd' {
				sawD = true
				if e.At < 7 {
					t.Fatalf("d marker at %d, before the absolute deadline 7", e.At)
				}
			}
		}
	}
	if !sawW || !sawD {
		t.Fatalf("markers missing: w=%v d=%v", sawW, sawD)
	}
}

func TestMarkerIssueParsing(t *testing.T) {
	if k, at, ok := markerIssue(wMarker(12)); !ok || k != 'w' || at != 12 {
		t.Errorf("wMarker parse = (%c,%d,%v)", k, at, ok)
	}
	if k, at, ok := markerIssue(dMarker(0)); !ok || k != 'd' || at != 0 {
		t.Errorf("dMarker parse = (%c,%d,%v)", k, at, ok)
	}
	for _, bad := range []string{"w", "x@3", "w@", "w@x", "ok"} {
		if _, _, ok := markerIssue(word.Symbol(bad)); ok {
			t.Errorf("markerIssue(%q) parsed", bad)
		}
	}
}

// Lemma 5.1: the periodic-query word's clock passes any bound at a finite
// index.
func TestLemma51(t *testing.T) {
	ps := PeriodicSpec{
		Query: "status_q", Issue: 3, Period: 10,
		Candidates: func(i uint64) Value { return "ok" },
	}
	w := ps.PqWord()
	for _, bound := range []timeseq.Time{1, 10, 50, 200} {
		idx, ok := Lemma51Bound(w, bound, 1_000_000)
		if !ok {
			t.Fatalf("no finite index reaches time %d", bound)
		}
		if w.At(idx).At < bound {
			t.Fatalf("witness %d has time %d < %d", idx, w.At(idx).At, bound)
		}
	}
	if !word.MonotoneWithin(w, 2000) {
		t.Error("pq word not monotone")
	}
	if !word.WellBehavedWithin(w, 2000) {
		t.Error("pq word should look well behaved (Lemma 5.1)")
	}
}

func TestViewAtAndMemberAq(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	// At issue 7, the last temp sample is at 5 → 20 ≤ 22 → "ok".
	if !sp.MemberAq(cat, QuerySpec{Query: "status_q", Issue: 7, Candidate: "ok"}) {
		t.Error("ok should be a member at issue 7")
	}
	if sp.MemberAq(cat, QuerySpec{Query: "status_q", Issue: 7, Candidate: "high"}) {
		t.Error("high should not be a member at issue 7")
	}
	// At issue 31, the last sample is at 30 → 23 > 22 → "high".
	if !sp.MemberAq(cat, QuerySpec{Query: "status_q", Issue: 31, Candidate: "high"}) {
		t.Error("high should be a member at issue 31")
	}
	// Unknown query.
	if sp.MemberAq(cat, QuerySpec{Query: "nope", Issue: 7, Candidate: "x"}) {
		t.Error("unknown query accepted")
	}
}

func TestRunAperiodicMemberAndNonMember(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	member := QuerySpec{Query: "status_q", Issue: 7, Candidate: "ok"}
	res := RunAperiodic(sp, member, cat, reg, 2, 200)
	if res.Verdict != core.AcceptProven {
		t.Fatalf("member verdict = %v", res.Verdict)
	}
	non := QuerySpec{Query: "status_q", Issue: 7, Candidate: "high"}
	res = RunAperiodic(sp, non, cat, reg, 2, 200)
	if res.Verdict != core.RejectProven {
		t.Fatalf("non-member verdict = %v", res.Verdict)
	}
}

// Deadline discipline on the acceptor: a slow evaluation misses a firm
// deadline even for a correct candidate.
func TestRunAperiodicFirmDeadline(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	base := QuerySpec{
		Query: "status_q", Issue: 7, Candidate: "ok",
		Kind: deadline.Firm, Deadline: 3, MinUseful: 1,
	}
	// EvalCost 2: finishes at issue+1, before issue+3.
	if res := RunAperiodic(sp, base, cat, reg, 2, 300); res.Verdict != core.AcceptProven {
		t.Fatalf("fast eval verdict = %v", res.Verdict)
	}
	// EvalCost 6: finishes at issue+5, after the deadline; usefulness 0.
	if res := RunAperiodic(sp, base, cat, reg, 6, 300); res.Verdict != core.RejectProven {
		t.Fatalf("slow eval verdict = %v", res.Verdict)
	}
}

// Soft deadline: late answers survive while the usefulness stays above the
// announced minimum.
func TestRunAperiodicSoftDeadline(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	u := deadline.Hyperbolic(10, 10) // absolute deadline = 7+3 = 10
	qs := QuerySpec{
		Query: "status_q", Issue: 7, Candidate: "ok",
		Kind: deadline.Soft, Deadline: 3, MinUseful: 5, U: u,
	}
	// EvalCost 5 → finishes at 11; u(11) = 10 ≥ 5: accept.
	if res := RunAperiodic(sp, qs, cat, reg, 5, 300); res.Verdict != core.AcceptProven {
		t.Fatalf("soft within usefulness: %v", res.Verdict)
	}
	// EvalCost 8 → finishes at 14; u(14) = 10/4 = 2 < 5: reject.
	if res := RunAperiodic(sp, qs, cat, reg, 8, 300); res.Verdict != core.RejectProven {
		t.Fatalf("soft below usefulness: %v", res.Verdict)
	}
}

func TestRunPeriodicAllServed(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	ps := PeriodicSpec{
		Query: "temp_q", Issue: 2, Period: 10,
		Candidates: func(i uint64) Value {
			// Ground truth: last sample before issue 2+10i.
			v := sp.ViewAt(2 + timeseq.Time(i)*10)
			s, _ := v.Latest("temp")
			return s.Value
		},
	}
	if !sp.MemberPq(cat, ps, 5) {
		t.Fatal("ground truth says non-member; candidates wrong")
	}
	res, acc := RunPeriodic(sp, ps, cat, reg, 1, 200)
	if res.Verdict != core.AcceptAtHorizon {
		t.Fatalf("periodic member verdict = %v", res.Verdict)
	}
	if acc.Served() < 5 || acc.Failed() != 0 {
		t.Fatalf("served=%d failed=%d", acc.Served(), acc.Failed())
	}
	if res.FCount != acc.Served() {
		t.Fatalf("FCount=%d served=%d", res.FCount, acc.Served())
	}
}

func TestRunPeriodicFailureStopsF(t *testing.T) {
	sp := testSpec()
	cat := testCatalog()
	reg := testRegistry()
	ps := PeriodicSpec{
		Query: "temp_q", Issue: 2, Period: 10,
		Candidates: func(i uint64) Value {
			if i == 2 {
				return "bogus"
			}
			v := sp.ViewAt(2 + timeseq.Time(i)*10)
			s, _ := v.Latest("temp")
			return s.Value
		},
	}
	if sp.MemberPq(cat, ps, 5) {
		t.Fatal("ground truth should reject")
	}
	res, acc := RunPeriodic(sp, ps, cat, reg, 1, 300)
	if res.Verdict != core.RejectProven {
		t.Fatalf("periodic non-member verdict = %v", res.Verdict)
	}
	if acc.Failed() == 0 {
		t.Fatal("no failure recorded")
	}
	// f's before the failure are fine; none after. The machine counted only
	// the pre-failure successes.
	if res.FCount > 2 {
		t.Fatalf("FCount = %d, want ≤ 2 (successes before invocation 2)", res.FCount)
	}
}

func TestBuildSpecIntoLiveDB(t *testing.T) {
	sp := testSpec()
	s := vtime.New()
	db := New(s)
	sp.Build(db)
	s.RunUntil(11)
	img, ok := db.Image("temp")
	if !ok || len(img.History()) != 3 {
		t.Fatalf("live DB history = %+v", img)
	}
	if err := db.Rederive("status"); err != nil {
		t.Fatal(err)
	}
}

// Equation (6): db_B = db_0·db_1·…·db_r with several image objects — the
// general case of §5.1.3. All streams interleave by time; records stay
// whole.
func TestDBWordMultipleImages(t *testing.T) {
	sp := Spec{
		Invariants: map[string]Value{"limit": "22"},
		Images: []*ImageObject{
			{Name: "temp", Period: 5, Read: tempRead},
			{Name: "pressure", Period: 7, Read: func(at timeseq.Time) Value {
				return "p" + tempRead(at)
			}},
		},
	}
	w := sp.DBWord()
	if !word.MonotoneWithin(w, 400) {
		t.Fatal("multi-image db_B not monotone")
	}
	// Group by timestamp and verify record integrity per instant.
	p := word.Prefix(w, 400)
	byTime := map[timeseq.Time][]word.Symbol{}
	var order []timeseq.Time
	for _, e := range p {
		if _, ok := byTime[e.At]; !ok {
			order = append(order, e.At)
		}
		byTime[e.At] = append(byTime[e.At], e.Sym)
	}
	// Drop the last (possibly truncated) instant.
	if len(order) > 1 {
		order = order[:len(order)-1]
	}
	sawTemp, sawPressure := false, false
	for _, at := range order {
		recs, ok := encoding.Records(byTime[at])
		if !ok {
			t.Fatalf("records at %d do not parse: %v", at, byTime[at])
		}
		for _, r := range recs {
			if r[0] == "I" {
				switch r[1] {
				case "temp":
					sawTemp = true
					if at%5 != 0 {
						t.Errorf("temp sample at %d, not a multiple of 5", at)
					}
				case "pressure":
					sawPressure = true
					if at%7 != 0 {
						t.Errorf("pressure sample at %d, not a multiple of 7", at)
					}
				}
			}
		}
	}
	if !sawTemp || !sawPressure {
		t.Fatalf("streams missing: temp=%v pressure=%v", sawTemp, sawPressure)
	}
}
