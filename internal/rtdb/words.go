package rtdb

import (
	"fmt"
	"sort"
	"strings"

	"rtc/internal/deadline"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// This file implements §5.1.3: real-time database instances and queries as
// timed ω-words, the recognition languages (9) and (10) of Definition 5.1,
// and Lemma 5.1.
//
// Encodings use the record machinery of internal/encoding (the paper
// assumes suitable enc and enc_q functions with disjoint codomains and
// leaves their construction open).

// Spec describes a real-time database instance B = (I…, D, V) by its
// generators: the invariant values, the derived-object definitions, and the
// image objects with their sampling periods and external-world read
// functions. A Spec plays the role of B in the language definitions; a live
// DB is its operational counterpart.
type Spec struct {
	Invariants map[string]Value
	Derived    []*DerivedObject
	Images     []*ImageObject
}

// Build instantiates a live DB from the spec on the given scheduler.
func (sp Spec) Build(db *DB) {
	for name, v := range sp.Invariants {
		db.AddInvariant(name, v)
	}
	for _, d := range sp.Derived {
		db.AddDerived(&DerivedObject{Name: d.Name, Sources: d.Sources, Derive: d.Derive})
	}
	for _, o := range sp.Images {
		db.AddImage(&ImageObject{Name: o.Name, Period: o.Period, Read: o.Read})
	}
}

// DB0Word builds db_0: the invariant and derived objects, all specified at
// time 0 ("the sets of both invariant and derived objects are specified at
// time 0").
func (sp Spec) DB0Word() word.Finite {
	var syms []word.Symbol
	names := make([]string, 0, len(sp.Invariants))
	for n := range sp.Invariants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		syms = append(syms, encoding.Record("V", n, sp.Invariants[n])...)
	}
	for _, d := range sp.Derived {
		fields := append([]string{"D", d.Name}, d.Sources...)
		syms = append(syms, encoding.Record(fields...)...)
	}
	out := make(word.Finite, len(syms))
	for i, s := range syms {
		out[i] = word.TimedSym{Sym: s, At: 0}
	}
	return out
}

// DBkWord builds db_k for one image object: "each t_k time units a new
// value for o_k is provided", i.e. the record enc(o_k(t_i)) at time i·t_k.
func DBkWord(o *ImageObject) word.Word {
	i := uint64(0)
	var pending word.Finite
	return word.Sequential(func() word.TimedSym {
		for len(pending) == 0 {
			t := timeseq.Time(i) * o.Period
			for _, s := range encoding.Record("I", o.Name, o.Read(t)) {
				pending = append(pending, word.TimedSym{Sym: s, At: t})
			}
			i++
		}
		e := pending[0]
		pending = pending[1:]
		return e
	})
}

// DBWord builds db_B = db_0 · db_1 · … · db_r under Definition 3.5's
// concatenation (equation (6)).
func (sp Spec) DBWord() word.Word {
	ws := []word.Word{sp.DB0Word()}
	for _, o := range sp.Images {
		ws = append(ws, DBkWord(o))
	}
	return word.ConcatAll(ws...)
}

// QuerySpec describes one real-time query instance: the query name (its
// enc_q is the name, resolved against a Catalog), the issue time t, the
// candidate tuple s, and the deadline class exactly as in §4.1 (no
// deadline, firm, or soft with usefulness u, imposed at relative time t_d).
type QuerySpec struct {
	Query     string
	Issue     timeseq.Time
	Candidate Value
	Kind      deadline.Kind
	Deadline  timeseq.Time // relative: the absolute deadline is Issue+Deadline
	MinUseful uint64
	U         deadline.Usefulness // over absolute time (case Soft)
}

// Marker symbols are subscripted by issue time — the w_x, d_x of the
// paper's periodic construction, which keep the markers of overlapping
// query words distinguishable after concatenation.
func wMarker(t timeseq.Time) word.Symbol { return word.Symbol(fmt.Sprintf("w@%d", t)) }
func dMarker(t timeseq.Time) word.Symbol { return word.Symbol(fmt.Sprintf("d@%d", t)) }

// markerIssue parses a marker back into its kind and issue time.
func markerIssue(s word.Symbol) (kind byte, issue timeseq.Time, ok bool) {
	str := string(s)
	if len(str) < 3 || str[1] != '@' || (str[0] != 'w' && str[0] != 'd') {
		return 0, 0, false
	}
	var v uint64
	for _, c := range str[2:] {
		if c < '0' || c > '9' {
			return 0, 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return str[0], timeseq.Time(v), true
}

// AqWord builds aq_[q,s,t] per §5.1.3: at time t the (optional) minimum
// usefulness, the candidate tuple, and the query arrive; then w_q markers
// every chronon until the (absolute) deadline; after it, pairs
// (d_q, usefulness).
func (qs QuerySpec) AqWord() word.Word {
	var header word.Finite
	add := func(s word.Symbol) {
		header = append(header, word.TimedSym{Sym: s, At: qs.Issue})
	}
	if qs.Kind != deadline.None {
		add(encoding.Num(qs.MinUseful))
	}
	for _, s := range encoding.Record("s", qs.Candidate) {
		add(s)
	}
	for _, s := range encoding.Record("q", qs.Query) {
		add(s)
	}
	h := uint64(len(header))
	absDead := qs.Issue + qs.Deadline

	useAfter := func(t timeseq.Time) uint64 {
		if qs.Kind == deadline.Soft && qs.U != nil {
			return qs.U(t)
		}
		return 0
	}
	return word.Gen{F: func(i uint64) word.TimedSym {
		if i < h {
			return header[i]
		}
		k := i - h
		t := qs.Issue + timeseq.Time(k+1)
		if qs.Kind == deadline.None || t < absDead {
			return word.TimedSym{Sym: wMarker(qs.Issue), At: t}
		}
		j := k - uint64(absDead-qs.Issue-1)
		at := absDead + timeseq.Time(j/2)
		if j%2 == 0 {
			return word.TimedSym{Sym: dMarker(qs.Issue), At: at}
		}
		return word.TimedSym{Sym: encoding.Num(useAfter(at)), At: at}
	}}
}

// PeriodicSpec describes a periodic query: first issued at Issue, then
// re-issued every Period chronons, with Candidates(i) the tuple tested at
// the i-th invocation (0-indexed).
type PeriodicSpec struct {
	Query      string
	Issue      timeseq.Time
	Period     timeseq.Time
	Candidates func(i uint64) Value
	Kind       deadline.Kind
	Deadline   timeseq.Time
	MinUseful  uint64
	U          deadline.Usefulness
}

// Invocation returns the aperiodic spec of the i-th invocation.
func (ps PeriodicSpec) Invocation(i uint64) QuerySpec {
	return QuerySpec{
		Query:     ps.Query,
		Issue:     ps.Issue + timeseq.Time(i)*ps.Period,
		Candidate: ps.Candidates(i),
		Kind:      ps.Kind,
		Deadline:  ps.Deadline,
		MinUseful: ps.MinUseful,
		U:         ps.U,
	}
}

// PqWord builds pq_[q,s,t,tp] = aq_[q,s1,t]·aq_[q,s2,t+tp]·…, the infinite
// concatenation of §5.1.3. Lemma 5.1 guarantees the result is well behaved;
// operationally that is exactly the MergeMany requirement (stream start
// times non-decreasing and unbounded).
func (ps PeriodicSpec) PqWord() word.Word {
	return word.MergeMany(func(k uint64) word.Word {
		return ps.Invocation(k).AqWord()
	})
}

// Lemma51Bound returns, per Lemma 5.1, an index k′ such that τ_{k′} ≥ k in
// the given word, by linear scan (the lemma asserts finiteness; the scan is
// its constructive witness). The second result is false if the scan budget
// is exhausted first — which for a well-behaved word cannot happen — or if a
// finite word (the lemma's hypotheses admit finite time sequences) ends
// before any element reaches time k.
func Lemma51Bound(w word.Word, k timeseq.Time, budget uint64) (uint64, bool) {
	limit := budget
	if l := w.Length(); !l.Omega && l.N < limit {
		limit = l.N
	}
	for i := uint64(0); i < limit; i++ {
		if w.At(i).At >= k {
			return i, true
		}
	}
	return 0, false
}

// Catalog maps query names (the codomain of enc_q) to their semantics: a
// query evaluates against a View of the database state and returns its
// answer set.
type Catalog map[string]func(v *View) []Value

// View is the database state visible at a point in time: invariants, the
// sampled history of every image object, and the derived-object registry
// for recomputation.
type View struct {
	Now        timeseq.Time
	Invariants map[string]Value
	Samples    map[string][]Sample
	Derived    map[string]*DerivedObject
}

// Latest returns the most recent sample of an image at or before Now.
// Histories are append-only and timestamp-ordered, so this is a binary
// search — the query path must not degrade as the history grows.
func (v *View) Latest(name string) (Sample, bool) {
	h := v.Samples[name]
	lo, hi := 0, len(h)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h[mid].At <= v.Now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Sample{}, false
	}
	return h[lo-1], true
}

// DeriveNow recomputes a derived object against the view.
func (v *View) DeriveNow(name string) (Value, bool) {
	d, ok := v.Derived[name]
	if !ok {
		return "", false
	}
	src := make(map[string]Value, len(d.Sources))
	for _, s := range d.Sources {
		if smp, ok := v.Latest(s); ok {
			src[s] = smp.Value
			continue
		}
		if val, ok := v.Invariants[s]; ok {
			src[s] = val
			continue
		}
		if val, ok := v.DeriveNow(s); ok {
			src[s] = val
			continue
		}
		return "", false
	}
	return d.Derive(src), true
}

// ViewAt builds the ground-truth view of a spec at time t (every sample the
// external world would have produced by then).
func (sp Spec) ViewAt(t timeseq.Time) *View {
	v := &View{
		Now:        t,
		Invariants: map[string]Value{},
		Samples:    map[string][]Sample{},
		Derived:    map[string]*DerivedObject{},
	}
	for n, val := range sp.Invariants {
		v.Invariants[n] = val
	}
	for _, d := range sp.Derived {
		v.Derived[d.Name] = d
	}
	for _, o := range sp.Images {
		for i := uint64(0); ; i++ {
			at := timeseq.Time(i) * o.Period
			if at > t {
				break
			}
			v.Samples[o.Name] = append(v.Samples[o.Name], Sample{At: at, Value: o.Read(at)})
		}
	}
	return v
}

// MemberAq is the ground truth of language (9): s ∈ q(B) with the query
// evaluated on the database state at the issue time.
func (sp Spec) MemberAq(cat Catalog, qs QuerySpec) bool {
	q, ok := cat[qs.Query]
	if !ok {
		return false
	}
	answers := q(sp.ViewAt(qs.Issue))
	for _, a := range answers {
		if a == qs.Candidate {
			return true
		}
	}
	return false
}

// MemberPq is the ground truth of language (10) restricted to the first n
// invocations: every tested tuple belongs to the corresponding answer
// ("the specification … require[s] that all the queries be served").
func (sp Spec) MemberPq(cat Catalog, ps PeriodicSpec, n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !sp.MemberAq(cat, ps.Invocation(i)) {
			return false
		}
	}
	return true
}

// describe renders a query spec for diagnostics.
func (qs QuerySpec) String() string {
	parts := []string{fmt.Sprintf("q=%s@%d s=%q", qs.Query, qs.Issue, qs.Candidate)}
	if qs.Kind != deadline.None {
		parts = append(parts, fmt.Sprintf("%v t_d=%d min=%d", qs.Kind, qs.Deadline, qs.MinUseful))
	}
	return strings.Join(parts, " ")
}
