package rtdb

import (
	"sort"
	"strconv"
	"strings"

	"rtc/internal/relational"
	"rtc/internal/timeseq"
)

// This file implements the temporal-database aspects §5.1.2 summarizes:
// "the database appears as a sequence of states or snapshots indexed by
// some time domain" — represented efficiently, as the section recommends,
// by a single relation with tuple-level timestamps ("timestamps may be
// placed at attribute or tuple level … typically unions of intervals over
// the temporal domain"). Time is linear and discrete, the model of choice
// for real-time databases.

// HistoricalTuple is a tuple with its valid-time lifespan.
type HistoricalTuple struct {
	Tuple relational.Tuple
	Valid Lifespan
}

// HistoricalRelation is a relation whose tuples carry lifespans. The
// sequence-of-snapshots view I_t is recovered by SnapshotAt.
//
// Two backings exist. The general form stores explicit rows with lifespans
// and supports arbitrary Insert/Terminate. The timeline form — built by
// FromLiveImage and NewTimelineRelation — captures an image object's
// append-only sample history by slice header: sample i is valid from its
// own timestamp to just before the next sample's, and the last sample runs
// to the horizon. Point lookups binary-search the samples instead of
// scanning rows, and capturing a timeline is O(1) regardless of history
// length, which is what makes incremental snapshot publication cheap.
// Mutating a timeline relation first thaws it into explicit rows.
type HistoricalRelation struct {
	Schema relational.Schema
	rows   []HistoricalTuple
	// index maps tupleKey → rows offset; maintained by Insert so repeated
	// inserts stay O(1) instead of rescanning every row.
	index map[string]int

	// Timeline backing (nil samples and empty object mean rows-backed).
	object  string
	samples []Sample
	horizon timeseq.Time
}

// NewHistoricalRelation creates an empty historical relation.
func NewHistoricalRelation(s relational.Schema) *HistoricalRelation {
	return &HistoricalRelation{Schema: s}
}

// NewTimelineRelation captures an image-style sample history as a
// (Object, Value) historical relation without materializing rows: the
// samples slice is shared, not copied, so the capture is O(1). Samples must
// be in non-decreasing timestamp order (append-only histories are); a later
// sample at the same instant shadows the earlier one. The last sample's
// validity runs to horizon.
func NewTimelineRelation(object string, samples []Sample, horizon timeseq.Time) *HistoricalRelation {
	return &HistoricalRelation{
		Schema: relational.Schema{
			Name:  object,
			Attrs: []relational.Attribute{"Object", "Value"},
		},
		object:  object,
		samples: samples,
		horizon: horizon,
	}
}

// timeline reports whether the relation is timeline-backed.
func (h *HistoricalRelation) timeline() bool { return h.samples != nil || h.object != "" }

// valueAt is the timeline point lookup: the value current at t, bounded by
// the given horizon. Binary search over the (sorted) samples; choosing the
// last sample with At ≤ t makes same-instant shadowing come out right.
func (h *HistoricalRelation) valueAt(t, horizon timeseq.Time) (Value, bool) {
	if t > horizon {
		return "", false
	}
	lo, hi := 0, len(h.samples)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.samples[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return "", false
	}
	return h.samples[lo-1].Value, true
}

// tupleKey renders a tuple as a collision-free map key (length-prefixed so
// field boundaries cannot be forged by crafted values).
func tupleKey(t relational.Tuple) string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

// thaw materializes a timeline backing into explicit rows so the mutating
// API keeps working on relations captured from live images.
func (h *HistoricalRelation) thaw() {
	if !h.timeline() {
		return
	}
	h.rows = h.materializeRows()
	h.object, h.samples = "", nil
	h.index = nil
}

// materializeRows converts the timeline into the equivalent explicit rows:
// one (Object, Value) tuple per distinct value run, lifespans unioned per
// tuple — the same structure the eager per-sample Insert loop used to build.
func (h *HistoricalRelation) materializeRows() []HistoricalTuple {
	var (
		rows []HistoricalTuple
		idx  = make(map[string]int, 8)
	)
	for i, s := range h.samples {
		end := h.horizon
		if i+1 < len(h.samples) {
			end = h.samples[i+1].At - 1
		}
		if end < s.At {
			continue
		}
		span := NewLifespan(Interval{s.At, end})
		if j, ok := idx[s.Value]; ok {
			rows[j].Valid = rows[j].Valid.Union(span)
			continue
		}
		idx[s.Value] = len(rows)
		rows = append(rows, HistoricalTuple{
			Tuple: relational.Tuple{h.object, s.Value},
			Valid: span,
		})
	}
	return rows
}

// Insert records a tuple valid over the given lifespan. Re-inserting an
// existing tuple unions the lifespans (set semantics per instant).
func (h *HistoricalRelation) Insert(t relational.Tuple, valid Lifespan) error {
	if len(t) != h.Schema.Arity() {
		return errArity(h.Schema, t)
	}
	h.thaw()
	if h.index == nil {
		h.index = make(map[string]int, len(h.rows)+1)
		for i := range h.rows {
			h.index[tupleKey(h.rows[i].Tuple)] = i
		}
	}
	key := tupleKey(t)
	if i, ok := h.index[key]; ok {
		h.rows[i].Valid = h.rows[i].Valid.Union(valid)
		return nil
	}
	cp := make(relational.Tuple, len(t))
	copy(cp, t)
	h.index[key] = len(h.rows)
	h.rows = append(h.rows, HistoricalTuple{Tuple: cp, Valid: valid})
	return nil
}

func errArity(s relational.Schema, t relational.Tuple) error {
	r := relational.NewRelation(s)
	return r.Insert(t) // reuse the relational arity error
}

// Terminate ends a tuple's validity at time t (exclusive): its lifespan is
// intersected with [0, t−1]. A tuple never valid is removed.
func (h *HistoricalRelation) Terminate(t relational.Tuple, at timeseq.Time) {
	h.thaw()
	var upTo Lifespan
	if at > 0 {
		upTo = NewLifespan(Interval{0, at - 1})
	}
	out := h.rows[:0]
	for _, row := range h.rows {
		if row.Tuple.Equal(t) {
			row.Valid = row.Valid.Intersect(upTo)
			if len(row.Valid) == 0 {
				continue
			}
		}
		out = append(out, row)
	}
	h.rows = out
	if h.index != nil {
		// Offsets shifted; rebuild.
		h.index = make(map[string]int, len(h.rows))
		for i := range h.rows {
			h.index[tupleKey(h.rows[i].Tuple)] = i
		}
	}
}

// HoldsAt is the predicate R(u, t) of §5.1.2: tuple u is in the relation at
// time t.
func (h *HistoricalRelation) HoldsAt(u relational.Tuple, t timeseq.Time) bool {
	return h.holdsAt(u, t, h.horizon)
}

func (h *HistoricalRelation) holdsAt(u relational.Tuple, t, horizon timeseq.Time) bool {
	if h.timeline() {
		if len(u) != 2 || u[0] != h.object {
			return false
		}
		v, ok := h.valueAt(t, horizon)
		return ok && v == u[1]
	}
	if h.index != nil {
		if i, ok := h.index[tupleKey(u)]; ok {
			return h.rows[i].Valid.Contains(t)
		}
		return false
	}
	for _, row := range h.rows {
		if row.Tuple.Equal(u) {
			return row.Valid.Contains(t)
		}
	}
	return false
}

// SnapshotAt materializes the instance I_t.
func (h *HistoricalRelation) SnapshotAt(t timeseq.Time) *relational.Relation {
	return h.snapshotAt(t, h.horizon)
}

func (h *HistoricalRelation) snapshotAt(t, horizon timeseq.Time) *relational.Relation {
	r := relational.NewRelation(h.Schema)
	if h.timeline() {
		if v, ok := h.valueAt(t, horizon); ok {
			_ = r.Insert(relational.Tuple{h.object, v})
		}
		return r
	}
	for _, row := range h.rows {
		if row.Valid.Contains(t) {
			_ = r.Insert(row.Tuple)
		}
	}
	return r
}

// Rows returns the historical tuples. For a timeline-backed relation the
// rows are materialized fresh on every call (the backing itself stays
// shared and immutable, so concurrent readers of a published snapshot never
// race); callers on hot paths should prefer the point lookups.
func (h *HistoricalRelation) Rows() []HistoricalTuple {
	if h.timeline() {
		return h.materializeRows()
	}
	return h.rows
}

// AppendChangePoints appends every instant at which the snapshot differs
// from the preceding instant — the boundaries of the sequence-of-states
// view — to dst and returns it, sorted ascending and deduplicated. Passing
// a reused scratch slice (dst[:0]) makes repeated calls allocation-free.
func (h *HistoricalRelation) AppendChangePoints(dst []timeseq.Time) []timeseq.Time {
	if h.timeline() {
		// Boundaries are where the current value changes: the first
		// effective sample, every value flip, and the instant after the
		// horizon. Samples shadowed by a same-instant successor and
		// same-value runs (whose adjacent lifespans would have merged in
		// row form) contribute nothing.
		first := true
		var prev Value
		for i, s := range h.samples {
			if i+1 < len(h.samples) && h.samples[i+1].At == s.At {
				continue // shadowed by a later sample at the same instant
			}
			if first || s.Value != prev {
				dst = append(dst, s.At)
			}
			first, prev = false, s.Value
		}
		if !first && h.horizon != timeseq.Infinity {
			dst = append(dst, h.horizon+1)
		}
		return dst
	}
	base := len(dst)
	for _, row := range h.rows {
		for _, iv := range row.Valid {
			dst = append(dst, iv.Lo)
			if iv.Hi != timeseq.Infinity {
				dst = append(dst, iv.Hi+1)
			}
		}
	}
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	// Dedupe in place.
	out := tail[:0]
	for i, t := range tail {
		if i == 0 || t != tail[i-1] {
			out = append(out, t)
		}
	}
	return dst[:base+len(out)]
}

// ChangePoints returns every instant at which the snapshot differs from the
// preceding instant. The result is sorted and bounded by the stored
// lifespans.
func (h *HistoricalRelation) ChangePoints() []timeseq.Time {
	return h.AppendChangePoints(nil)
}

// HistoricalDatabase is a database of historical relations plus a
// snapshot-indexed evaluation of ordinary relational queries — the temporal
// extension of the §5.1.1 query model.
type HistoricalDatabase struct {
	rels map[string]*HistoricalRelation
	// at is the serving horizon of a published snapshot. Timeline-backed
	// relations shared by pointer from an older snapshot keep their capture
	// horizon; at extends their newest value's validity to the publication
	// instant — an image without new samples since its last capture still
	// answers as-of reads up to the present. Zero means "each relation's
	// own horizon", the standalone behavior.
	at timeseq.Time
}

// NewHistoricalDatabase creates an empty instance.
func NewHistoricalDatabase() *HistoricalDatabase {
	return &HistoricalDatabase{rels: map[string]*HistoricalRelation{}}
}

// Clone returns a copy sharing every relation by pointer — the copy-on-
// write step of incremental snapshot publication: replace only the
// relations whose images changed, keep the rest.
func (db *HistoricalDatabase) Clone() *HistoricalDatabase {
	rels := make(map[string]*HistoricalRelation, len(db.rels))
	for n, h := range db.rels {
		rels[n] = h
	}
	return &HistoricalDatabase{rels: rels, at: db.at}
}

// SetHorizon sets the serving horizon (see the at field).
func (db *HistoricalDatabase) SetHorizon(t timeseq.Time) { db.at = t }

// Horizon returns the serving horizon.
func (db *HistoricalDatabase) Horizon() timeseq.Time { return db.at }

// effHorizon is the horizon a relation serves under inside this database.
func (db *HistoricalDatabase) effHorizon(h *HistoricalRelation) timeseq.Time {
	if db.at > h.horizon {
		return db.at
	}
	return h.horizon
}

// Add registers a historical relation.
func (db *HistoricalDatabase) Add(h *HistoricalRelation) {
	db.rels[h.Schema.Name] = h
}

// Relation looks up a historical relation.
func (db *HistoricalDatabase) Relation(name string) (*HistoricalRelation, bool) {
	h, ok := db.rels[name]
	return h, ok
}

// HoldsAt is R(u, t) routed through the database's serving horizon.
func (db *HistoricalDatabase) HoldsAt(name string, u relational.Tuple, t timeseq.Time) bool {
	h, ok := db.rels[name]
	if !ok {
		return false
	}
	return h.holdsAt(u, t, db.effHorizon(h))
}

// ValueAsOf returns the (Object, Value) relation's value at time t — the
// indexed fast path behind Server.ValueAsOf. Timeline-backed relations
// binary-search their samples; row-backed ones fall back to a scan.
func (db *HistoricalDatabase) ValueAsOf(name string, t timeseq.Time) (Value, bool) {
	h, ok := db.rels[name]
	if !ok {
		return "", false
	}
	if h.timeline() {
		return h.valueAt(t, db.effHorizon(h))
	}
	for _, row := range h.rows {
		if len(row.Tuple) == 2 && row.Tuple[0] == name && row.Valid.Contains(t) {
			return row.Tuple[1], true
		}
	}
	return "", false
}

// SnapshotAt materializes the whole database instance I_t.
func (db *HistoricalDatabase) SnapshotAt(t timeseq.Time) *relational.Database {
	out := relational.NewDatabase()
	for _, h := range db.rels {
		out.Add(h.snapshotAt(t, db.effHorizon(h)))
	}
	return out
}

// QueryAt evaluates an ordinary relational query against the snapshot at
// time t — "one could simply add a second argument to R and write R(u, t)".
func (db *HistoricalDatabase) QueryAt(q relational.Query, t timeseq.Time) (*relational.Relation, error) {
	return q.Eval(db.SnapshotAt(t))
}

// QueryDuring evaluates q at every change point within [lo, hi] and returns
// the union of the answers together with the lifespan during which each
// answer tuple was in the result — a simple valid-time query semantics.
func (db *HistoricalDatabase) QueryDuring(q relational.Query, lo, hi timeseq.Time) (*HistoricalRelation, error) {
	// Collect candidate evaluation points: lo plus every change point of
	// every stored relation inside (lo, hi]. One scratch buffer serves all
	// relations.
	points := []timeseq.Time{lo}
	var scratch []timeseq.Time
	for _, h := range db.rels {
		scratch = h.AppendChangePoints(scratch[:0])
		for _, cp := range scratch {
			if cp > lo && cp <= hi {
				points = append(points, cp)
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	out := NewHistoricalRelation(q.Sort())
	for i, p := range points {
		if i > 0 && points[i-1] == p {
			continue
		}
		end := hi
		for _, np := range points[i+1:] {
			if np != p {
				end = np - 1
				break
			}
		}
		res, err := q.Eval(db.SnapshotAt(p))
		if err != nil {
			return nil, err
		}
		for _, u := range res.Tuples() {
			if err := out.Insert(u, NewLifespan(Interval{p, end})); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// FromLiveImage converts an image object's archival history into a
// historical relation (Name, Value) — the "archival sets of image objects"
// view of §5.1.2. The history slice is captured by header, not copied:
// the conversion is O(1), and because the history is append-only the
// captured prefix never changes underneath a published snapshot.
func FromLiveImage(o *ImageObject, now timeseq.Time) *HistoricalRelation {
	return NewTimelineRelation(o.Name, o.History(), now)
}
