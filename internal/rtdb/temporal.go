package rtdb

import (
	"sort"

	"rtc/internal/relational"
	"rtc/internal/timeseq"
)

// This file implements the temporal-database aspects §5.1.2 summarizes:
// "the database appears as a sequence of states or snapshots indexed by
// some time domain" — represented efficiently, as the section recommends,
// by a single relation with tuple-level timestamps ("timestamps may be
// placed at attribute or tuple level … typically unions of intervals over
// the temporal domain"). Time is linear and discrete, the model of choice
// for real-time databases.

// HistoricalTuple is a tuple with its valid-time lifespan.
type HistoricalTuple struct {
	Tuple relational.Tuple
	Valid Lifespan
}

// HistoricalRelation is a relation whose tuples carry lifespans. The
// sequence-of-snapshots view I_t is recovered by SnapshotAt.
type HistoricalRelation struct {
	Schema relational.Schema
	rows   []HistoricalTuple
}

// NewHistoricalRelation creates an empty historical relation.
func NewHistoricalRelation(s relational.Schema) *HistoricalRelation {
	return &HistoricalRelation{Schema: s}
}

// Insert records a tuple valid over the given lifespan. Re-inserting an
// existing tuple unions the lifespans (set semantics per instant).
func (h *HistoricalRelation) Insert(t relational.Tuple, valid Lifespan) error {
	if len(t) != h.Schema.Arity() {
		return errArity(h.Schema, t)
	}
	for i := range h.rows {
		if h.rows[i].Tuple.Equal(t) {
			h.rows[i].Valid = h.rows[i].Valid.Union(valid)
			return nil
		}
	}
	cp := make(relational.Tuple, len(t))
	copy(cp, t)
	h.rows = append(h.rows, HistoricalTuple{Tuple: cp, Valid: valid})
	return nil
}

func errArity(s relational.Schema, t relational.Tuple) error {
	r := relational.NewRelation(s)
	return r.Insert(t) // reuse the relational arity error
}

// Terminate ends a tuple's validity at time t (exclusive): its lifespan is
// intersected with [0, t−1]. A tuple never valid is removed.
func (h *HistoricalRelation) Terminate(t relational.Tuple, at timeseq.Time) {
	var upTo Lifespan
	if at > 0 {
		upTo = NewLifespan(Interval{0, at - 1})
	}
	out := h.rows[:0]
	for _, row := range h.rows {
		if row.Tuple.Equal(t) {
			row.Valid = row.Valid.Intersect(upTo)
			if len(row.Valid) == 0 {
				continue
			}
		}
		out = append(out, row)
	}
	h.rows = out
}

// HoldsAt is the predicate R(u, t) of §5.1.2: tuple u is in the relation at
// time t.
func (h *HistoricalRelation) HoldsAt(u relational.Tuple, t timeseq.Time) bool {
	for _, row := range h.rows {
		if row.Tuple.Equal(u) {
			return row.Valid.Contains(t)
		}
	}
	return false
}

// SnapshotAt materializes the instance I_t.
func (h *HistoricalRelation) SnapshotAt(t timeseq.Time) *relational.Relation {
	r := relational.NewRelation(h.Schema)
	for _, row := range h.rows {
		if row.Valid.Contains(t) {
			_ = r.Insert(row.Tuple)
		}
	}
	return r
}

// Rows returns the stored historical tuples.
func (h *HistoricalRelation) Rows() []HistoricalTuple { return h.rows }

// ChangePoints returns every instant at which the snapshot differs from the
// preceding instant — the boundaries of the sequence-of-states view. The
// result is sorted and bounded by the stored lifespans.
func (h *HistoricalRelation) ChangePoints() []timeseq.Time {
	set := map[timeseq.Time]bool{}
	for _, row := range h.rows {
		for _, iv := range row.Valid {
			set[iv.Lo] = true
			if iv.Hi != timeseq.Infinity {
				set[iv.Hi+1] = true
			}
		}
	}
	out := make([]timeseq.Time, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HistoricalDatabase is a database of historical relations plus a
// snapshot-indexed evaluation of ordinary relational queries — the temporal
// extension of the §5.1.1 query model.
type HistoricalDatabase struct {
	rels map[string]*HistoricalRelation
}

// NewHistoricalDatabase creates an empty instance.
func NewHistoricalDatabase() *HistoricalDatabase {
	return &HistoricalDatabase{rels: map[string]*HistoricalRelation{}}
}

// Add registers a historical relation.
func (db *HistoricalDatabase) Add(h *HistoricalRelation) {
	db.rels[h.Schema.Name] = h
}

// Relation looks up a historical relation.
func (db *HistoricalDatabase) Relation(name string) (*HistoricalRelation, bool) {
	h, ok := db.rels[name]
	return h, ok
}

// SnapshotAt materializes the whole database instance I_t.
func (db *HistoricalDatabase) SnapshotAt(t timeseq.Time) *relational.Database {
	out := relational.NewDatabase()
	for _, h := range db.rels {
		out.Add(h.SnapshotAt(t))
	}
	return out
}

// QueryAt evaluates an ordinary relational query against the snapshot at
// time t — "one could simply add a second argument to R and write R(u, t)".
func (db *HistoricalDatabase) QueryAt(q relational.Query, t timeseq.Time) (*relational.Relation, error) {
	return q.Eval(db.SnapshotAt(t))
}

// QueryDuring evaluates q at every change point within [lo, hi] and returns
// the union of the answers together with the lifespan during which each
// answer tuple was in the result — a simple valid-time query semantics.
func (db *HistoricalDatabase) QueryDuring(q relational.Query, lo, hi timeseq.Time) (*HistoricalRelation, error) {
	// Collect candidate evaluation points: lo plus every change point of
	// every stored relation inside (lo, hi].
	points := []timeseq.Time{lo}
	for _, h := range db.rels {
		for _, cp := range h.ChangePoints() {
			if cp > lo && cp <= hi {
				points = append(points, cp)
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	out := NewHistoricalRelation(q.Sort())
	for i, p := range points {
		if i > 0 && points[i-1] == p {
			continue
		}
		end := hi
		for _, np := range points[i+1:] {
			if np != p {
				end = np - 1
				break
			}
		}
		res, err := q.Eval(db.SnapshotAt(p))
		if err != nil {
			return nil, err
		}
		for _, u := range res.Tuples() {
			if err := out.Insert(u, NewLifespan(Interval{p, end})); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// FromLiveImage converts an image object's archival history into a
// historical relation (Name, Value) with lifespans spanning from each
// sample to the next — the "archival sets of image objects" view of §5.1.2.
func FromLiveImage(o *ImageObject, now timeseq.Time) *HistoricalRelation {
	h := NewHistoricalRelation(relational.Schema{
		Name:  o.Name,
		Attrs: []relational.Attribute{"Object", "Value"},
	})
	hist := o.History()
	for i, s := range hist {
		end := now
		if i+1 < len(hist) {
			end = hist[i+1].At - 1
		}
		if end < s.At {
			continue
		}
		_ = h.Insert(relational.Tuple{o.Name, s.Value}, NewLifespan(Interval{s.At, end}))
	}
	return h
}
