package rtdb

import (
	"rtc/internal/core"
	"rtc/internal/encoding"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Mode selects the acceptance discipline of the recognition acceptor.
type Mode int

const (
	// Aperiodic: language (9) — a single query instance; the first
	// successful comparison commits the control to s_f (f forever), the
	// first failure to s_r.
	Aperiodic Mode = iota
	// Periodic: language (10) — f is written once per successfully served
	// invocation ("each occurrence of f signals a successfully served
	// query"), and any failure prevents all further f's.
	Periodic
)

// DeriveRegistry resolves derived-object names to their computation — the
// part of enc(D) that a symbol encoding cannot carry (the paper's enc is
// assumed to encode objects; we register the function by name).
type DeriveRegistry map[string]func(src map[string]Value) Value

// RTAcceptor is the recognition acceptor for the languages of Definition
// 5.1: it consumes db_B·aq (or db_B·pq) words, reconstructs the database
// state from the input tape, evaluates each issued query after EvalCost
// chronons, and compares the answer set against the candidate tuple under
// the §4.1 deadline discipline.
type RTAcceptor struct {
	core.Control
	Catalog  Catalog
	Registry DeriveRegistry
	Mode     Mode
	// EvalCost is the number of chronons P_w needs per query evaluation.
	EvalCost uint64

	invariants map[string]Value
	derived    map[string]*DerivedObject
	samples    map[string][]Sample

	pending []*invocation
	served  uint64
	failed  uint64
}

type invocation struct {
	query     string
	candidate Value
	hasCand   bool
	issue     timeseq.Time
	minUseful uint64
	hasMin    bool
	remaining uint64
	pastDead  bool
	curUseful uint64
	done      bool
	success   bool
}

// NewRTAcceptor builds an acceptor.
func NewRTAcceptor(cat Catalog, reg DeriveRegistry, mode Mode, evalCost uint64) *RTAcceptor {
	if evalCost == 0 {
		evalCost = 1
	}
	return &RTAcceptor{
		Catalog:    cat,
		Registry:   reg,
		Mode:       mode,
		EvalCost:   evalCost,
		invariants: map[string]Value{},
		derived:    map[string]*DerivedObject{},
		samples:    map[string][]Sample{},
	}
}

// Served returns the number of successfully served invocations.
func (a *RTAcceptor) Served() uint64 { return a.served }

// Failed returns the number of failed invocations.
func (a *RTAcceptor) Failed() uint64 { return a.failed }

// Tick implements core.Program.
func (a *RTAcceptor) Tick(t *core.Tick) {
	a.consume(t)
	// P_w: advance every in-flight evaluation by one chronon.
	for _, inv := range a.pending {
		if inv.done {
			continue
		}
		if inv.remaining > 0 {
			inv.remaining--
		}
		if inv.remaining == 0 {
			a.finish(inv, t.Now)
		}
	}
	if a.Mode == Periodic && a.failed > 0 {
		a.RejectForever()
	}
	a.Drive(t)
}

// consume parses this tick's arrivals: records (V/D/I/s/q), deadline
// markers, and usefulness values.
func (a *RTAcceptor) consume(t *core.Tick) {
	var rec []word.Symbol
	inRecord := false
	var lastDMarker *invocation
	var headerMin uint64
	var headerHasMin bool
	var headerCand Value
	var headerHasCand bool

	for _, e := range t.New {
		if inRecord {
			rec = append(rec, e.Sym)
			if e.Sym == encoding.Dollar {
				fields, ok := encoding.ParseRecord(rec)
				inRecord = false
				rec = nil
				if ok {
					a.handleRecord(fields, t.Now, &headerMin, &headerHasMin, &headerCand, &headerHasCand)
				}
				lastDMarker = nil
			}
			continue
		}
		switch {
		case e.Sym == encoding.Dollar:
			inRecord = true
			rec = append(rec[:0], e.Sym)
		default:
			if kind, issue, ok := markerIssue(e.Sym); ok {
				if inv := a.invocationAt(issue); inv != nil {
					if kind == 'd' {
						inv.pastDead = true
						lastDMarker = inv
					}
				}
				if kind == 'w' {
					lastDMarker = nil
				}
				continue
			}
			if v, ok := encoding.AsNum(e.Sym); ok {
				if lastDMarker != nil {
					// The usefulness value paired with the last d marker.
					lastDMarker.curUseful = v
					lastDMarker = nil
				} else {
					// A header minimum-usefulness announcement.
					headerMin = v
					headerHasMin = true
				}
			}
		}
	}
}

// handleRecord integrates one parsed record into the acceptor state.
func (a *RTAcceptor) handleRecord(fields []string, now timeseq.Time,
	headerMin *uint64, headerHasMin *bool, headerCand *Value, headerHasCand *bool) {
	switch fields[0] {
	case "V":
		if len(fields) == 3 {
			a.invariants[fields[1]] = fields[2]
		}
	case "D":
		if len(fields) >= 2 {
			name := fields[1]
			fn, ok := a.Registry[name]
			if !ok {
				return
			}
			a.derived[name] = &DerivedObject{
				Name:    name,
				Sources: append([]string{}, fields[2:]...),
				Derive:  fn,
			}
		}
	case "I":
		if len(fields) == 3 {
			a.samples[fields[1]] = append(a.samples[fields[1]], Sample{At: now, Value: fields[2]})
		}
	case "s":
		if len(fields) == 2 {
			*headerCand = fields[1]
			*headerHasCand = true
		}
	case "q":
		if len(fields) == 2 {
			inv := &invocation{
				query:     fields[1],
				candidate: *headerCand,
				hasCand:   *headerHasCand,
				issue:     now,
				minUseful: *headerMin,
				hasMin:    *headerHasMin,
				remaining: a.EvalCost,
			}
			a.pending = append(a.pending, inv)
			*headerHasMin = false
			*headerMin = 0
			*headerHasCand = false
			*headerCand = ""
		}
	}
}

// invocationAt finds the (unique) invocation issued at the given time.
func (a *RTAcceptor) invocationAt(issue timeseq.Time) *invocation {
	for _, inv := range a.pending {
		if inv.issue == issue {
			return inv
		}
	}
	return nil
}

// view assembles the acceptor's reconstruction of the database state.
func (a *RTAcceptor) view(now timeseq.Time) *View {
	return &View{Now: now, Invariants: a.invariants, Samples: a.samples, Derived: a.derived}
}

// finish is P_m's comparison at the moment the evaluation of one invocation
// completes, mirroring §4.1.
func (a *RTAcceptor) finish(inv *invocation, now timeseq.Time) {
	inv.done = true
	match := false
	// The query answers over the database state as of its issue time, so
	// the verdict agrees with s ∈ q(B) regardless of evaluation latency;
	// the latency only matters to the deadline discipline.
	if q, ok := a.Catalog[inv.query]; ok && inv.hasCand {
		for _, ans := range q(a.view(inv.issue)) {
			if ans == inv.candidate {
				match = true
				break
			}
		}
	}
	ok := match
	if inv.pastDead {
		ok = match && inv.hasMin && inv.minUseful > 0 && inv.curUseful >= inv.minUseful
	}
	inv.success = ok
	if ok {
		a.served++
	} else {
		a.failed++
	}
	if a.Mode == Aperiodic {
		if ok {
			a.AcceptForever()
		} else {
			a.RejectForever()
		}
	}
}

// PeriodicProgress is a periodic-mode program wrapper that emits one f per
// successfully served invocation, as discussed under Definition 3.4. It
// wraps RTAcceptor because the f-per-success duty needs the output port.
type PeriodicProgress struct {
	*RTAcceptor
	emitted uint64
}

// Tick implements core.Program.
func (p *PeriodicProgress) Tick(t *core.Tick) {
	p.RTAcceptor.Tick(t)
	if p.RTAcceptor.Mode != Periodic {
		return
	}
	if acc, done := p.RTAcceptor.Absorbed(); done && !acc {
		return // failed: no further f's
	}
	if p.emitted < p.RTAcceptor.served {
		// One f per tick at most (Definition 3.3): catch up gradually.
		if err := t.Emit(core.F); err == nil {
			p.emitted++
		}
	}
}

// RecognitionWordAperiodic assembles db_B · aq_[q,s,t] (language (9)).
func RecognitionWordAperiodic(sp Spec, qs QuerySpec) word.Word {
	return word.Concat(sp.DBWord(), qs.AqWord())
}

// RecognitionWordPeriodic assembles db_B · pq_[q,s,t,tp] (language (10)).
func RecognitionWordPeriodic(sp Spec, ps PeriodicSpec) word.Word {
	return word.Concat(sp.DBWord(), ps.PqWord())
}

// RunAperiodic runs the full pipeline for language (9) and returns the
// machine verdict.
func RunAperiodic(sp Spec, qs QuerySpec, cat Catalog, reg DeriveRegistry, evalCost, horizon uint64) core.Result {
	acc := NewRTAcceptor(cat, reg, Aperiodic, evalCost)
	m := core.NewMachine(acc, RecognitionWordAperiodic(sp, qs))
	return core.RunForVerdict(m, horizon)
}

// RunPeriodic runs the pipeline for language (10); the result's FCount is
// the number of served invocations observed within the horizon.
func RunPeriodic(sp Spec, ps PeriodicSpec, cat Catalog, reg DeriveRegistry, evalCost, horizon uint64) (core.Result, *RTAcceptor) {
	acc := NewRTAcceptor(cat, reg, Periodic, evalCost)
	prog := &PeriodicProgress{RTAcceptor: acc}
	m := core.NewMachine(prog, RecognitionWordPeriodic(sp, ps))
	res := core.RunForVerdict(m, horizon)
	return res, acc
}
