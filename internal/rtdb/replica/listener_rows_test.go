package replica

import (
	"net"
	"testing"
	"time"

	"rtc/internal/rtwire"
)

// TestStandbyMetricsDurabilityRows: the hot-standby listener publishes the
// same wal_seq/epoch coordinate names netserve uses (plus the repl_* books),
// so failover tooling reads one table shape regardless of which role served
// it. rtdbload's durability check resolves wal_seq by name against a node
// that may still be a standby when the run ends.
func TestStandbyMetricsDurabilityRows(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 1<<16, 1<<20)
	r := newTestReplica(t, addr)
	defer r.Close()
	r.Start()

	events := testEvents(8)
	for _, e := range events {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("replica stuck at seq %d, want %d", r.Seq(), len(events))
	}
	la, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", la.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Write(rtwire.Hello{Client: "rows-probe"}.Encode()); err != nil {
		t.Fatal(err)
	}
	br := newFrameReader(nc)
	msg, err := readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := msg.(rtwire.Welcome)
	if !ok {
		t.Fatalf("handshake reply = %T, want Welcome", msg)
	}
	if w.Role != rtwire.RoleStandby {
		t.Fatalf("standby announced role %v", w.Role)
	}
	if _, err := nc.Write(rtwire.MetricsReq{ID: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := msg.(rtwire.Metrics)
	if !ok {
		t.Fatalf("metrics reply = %T, want Metrics", msg)
	}
	mm := m.Map()
	for _, name := range []string{"wal_seq", "epoch", "repl_seq", "repl_epoch"} {
		if _, ok := mm[name]; !ok {
			t.Errorf("standby metrics missing %q (got %d rows)", name, len(m.Pairs))
		}
	}
	if got, want := mm["wal_seq"], uint64(len(events)); got != want {
		t.Errorf("standby wal_seq = %d, want %d", got, want)
	}
	if got := mm["epoch"]; got != r.Epoch() {
		t.Errorf("standby epoch = %d, want %d", got, r.Epoch())
	}
}
