package replica

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// testEvents is a small deterministic workload: the catalog prologue plus n
// samples spread over the images.
func testEvents(n int) []wal.Event {
	events := []wal.Event{
		wal.Invariant("limit", "22"),
		wal.Image("temp", 5),
		wal.Image("press", 3),
		wal.Derived("status", "temp", "limit"),
	}
	images := []string{"temp", "press"}
	for i := 0; i < n; i++ {
		events = append(events, wal.Sample(timeseq.Time(i+1), images[i%2], fmt.Sprintf("v%d", i)))
	}
	return events
}

func testDerive(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

func testCatalog() rtdb.Catalog {
	return rtdb.Catalog{
		"status_q": func(v *rtdb.View) []rtdb.Value {
			if s, ok := v.DeriveNow("status"); ok {
				return []rtdb.Value{s}
			}
			return nil
		},
	}
}

// newTestPrimary stands up a WAL-backed replication sender (an unstarted
// server shell, exactly what the torture sweep uses) on a loopback port.
// The returned stop function is idempotent and stops the shell before the
// transport — the unstarted shell has no apply loop, so a connection
// draining through Session.Flush only unblocks once Stop closes quit.
func newTestPrimary(t testing.TB, segSize int64, snapEvery uint64) (*wal.Log, func(), string) {
	t.Helper()
	lp, err := wal.Open(wal.Options{
		Dir: "wal", FS: faultfs.NewMem(1), SegmentSize: segSize, SnapshotEvery: snapEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Log: lp})
	if err != nil {
		t.Fatal(err)
	}
	// Run the apply loop: a follower disconnect flushes its session during
	// netserve teardown, and only a started server completes that flush —
	// without it the (Sessions: 1) pool wedges after the first disconnect.
	srv.Start()
	ns := netserve.New(srv, netserve.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		ReplBatch:         4, ReplWindow: 16, TailBuffer: 64,
	})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := func() { srv.Stop(); ns.Close() }
	t.Cleanup(stop)
	return lp, stop, addr.String()
}

func newTestReplica(t testing.TB, primary string) *Replica {
	t.Helper()
	r, err := Open(Config{
		Primary: primary,
		WAL:     wal.Options{Dir: "rwal", FS: faultfs.NewMem(2), SegmentSize: 2048, SnapshotEvery: 32},
		Name:    "t-follower",
		Catalog: testCatalog(), Registry: rtdb.DeriveRegistry{"status": testDerive},
		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
		Seed: 7, HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLiveReplication: events appended on the primary while the replica is
// subscribed arrive in order and reproduce the exact state.
func TestLiveReplication(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 1<<16, 1<<20)
	r := newTestReplica(t, addr)
	defer r.Close()
	r.Start()

	events := testEvents(40)
	for _, e := range events {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("replica stuck at seq %d, want %d", r.Seq(), len(events))
	}
	r.mu.Lock()
	d := lp.State().Diff(r.log.State())
	r.mu.Unlock()
	if d != "" {
		t.Fatalf("replicated state diverged: %s", d)
	}
	if r.Repl.EventsApplied.Load() != uint64(len(events)) {
		t.Fatalf("EventsApplied = %d, want %d", r.Repl.EventsApplied.Load(), len(events))
	}
}

// TestCatchupThenTail: the replica starts after the primary already has a
// history — catch-up from segments must hand off seamlessly to the live
// tail.
func TestCatchupThenTail(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 1<<16, 1<<20)
	events := testEvents(30)
	half := len(events) / 2
	for _, e := range events[:half] {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}

	r := newTestReplica(t, addr)
	defer r.Close()
	r.Start()
	if !r.WaitSeq(uint64(half), 10*time.Second) {
		t.Fatalf("catch-up stuck at %d, want %d", r.Seq(), half)
	}
	for _, e := range events[half:] {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("live tail stuck at %d, want %d", r.Seq(), len(events))
	}
	r.mu.Lock()
	d := lp.State().Diff(r.log.State())
	r.mu.Unlock()
	if d != "" {
		t.Fatalf("replicated state diverged: %s", d)
	}
}

// TestCompactedCatchupResyncs: when the events a fresh replica needs were
// compacted away on the primary, the sender must fall back to a full-state
// resync (snapshot frames → Bootstrap) and the states must still match.
func TestCompactedCatchupResyncs(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 256, 8)
	events := testEvents(60)
	for _, e := range events {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := lp.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := lp.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := lp.ReadSince(0, 1); err != wal.ErrSeqCompacted {
		t.Fatalf("precondition: ReadSince(0) = %v, want ErrSeqCompacted", err)
	}

	r := newTestReplica(t, addr)
	defer r.Close()
	r.Start()
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("resync stuck at %d, want %d", r.Seq(), len(events))
	}
	if got := r.Repl.Resyncs.Load(); got == 0 {
		t.Fatal("catch-up past compaction did not count a resync")
	}
	r.mu.Lock()
	d := lp.State().Diff(r.log.State())
	r.mu.Unlock()
	if d != "" {
		t.Fatalf("resynced state diverged: %s", d)
	}
}

// TestApplyBatchDiscipline drives applyBatch directly: epoch fencing,
// duplicate skipping, gap detection, and epoch adoption.
func TestApplyBatchDiscipline(t *testing.T) {
	r, err := Open(Config{
		Primary: "unused",
		WAL:     wal.Options{Dir: "rwal", FS: faultfs.NewMem(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	payload := func(e wal.Event) string { return string(e.Payload()) }
	ev := testEvents(4)

	// A batch from a dead epoch is refused before anything applies.
	if err := r.applyBatch(rtwire.WalBatch{Epoch: 0, FirstSeq: 1, Events: []string{payload(ev[0])}}); err != errStaleBatch {
		t.Fatalf("stale-epoch batch: err = %v, want errStaleBatch", err)
	}
	if r.Seq() != 0 {
		t.Fatalf("stale batch applied events: seq = %d", r.Seq())
	}

	// A clean batch at the tail applies in order.
	b := rtwire.WalBatch{Epoch: 1, FirstSeq: 1, Events: []string{payload(ev[0]), payload(ev[1])}}
	if err := r.applyBatch(b); err != nil {
		t.Fatal(err)
	}
	if r.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", r.Seq())
	}

	// The identical batch again: pure overlap, skipped exactly once each.
	if err := r.applyBatch(b); err != nil {
		t.Fatal(err)
	}
	if r.Seq() != 2 || r.Repl.DupSkipped.Load() != 2 {
		t.Fatalf("dup replay: seq = %d dups = %d, want 2/2", r.Seq(), r.Repl.DupSkipped.Load())
	}

	// A partially overlapping batch applies only its new suffix.
	if err := r.applyBatch(rtwire.WalBatch{Epoch: 1, FirstSeq: 2, Events: []string{payload(ev[1]), payload(ev[2])}}); err != nil {
		t.Fatal(err)
	}
	if r.Seq() != 3 || r.Repl.DupSkipped.Load() != 3 {
		t.Fatalf("overlap batch: seq = %d dups = %d, want 3/3", r.Seq(), r.Repl.DupSkipped.Load())
	}

	// A batch past tail+1 is a gap: refused, nothing applied.
	if err := r.applyBatch(rtwire.WalBatch{Epoch: 1, FirstSeq: 5, Events: []string{payload(ev[3])}}); err != errGap {
		t.Fatalf("gap batch: err = %v, want errGap", err)
	}
	if r.Seq() != 3 || r.Repl.GapResubscribes.Load() != 1 {
		t.Fatalf("gap batch: seq = %d resubs = %d, want 3/1", r.Seq(), r.Repl.GapResubscribes.Load())
	}

	// A newer epoch is adopted and persisted before its events apply.
	if err := r.applyBatch(rtwire.WalBatch{Epoch: 7, FirstSeq: 4, Events: []string{payload(ev[3])}}); err != nil {
		t.Fatal(err)
	}
	if r.Seq() != 4 || r.Epoch() != 7 {
		t.Fatalf("epoch adoption: seq = %d epoch = %d, want 4/7", r.Seq(), r.Epoch())
	}
	// ...and the old epoch can never come back.
	if err := r.applyBatch(rtwire.WalBatch{Epoch: 1, FirstSeq: 5, Events: []string{payload(ev[0])}}); err != errStaleBatch {
		t.Fatalf("deposed epoch after adoption: err = %v, want errStaleBatch", err)
	}
}

// TestPromoteFencesAndSurvives: promotion bumps the epoch durably and stops
// the tailer; the promoted log accepts writes.
func TestPromoteFencesAndSurvives(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 1<<16, 1<<20)
	events := testEvents(10)
	for _, e := range events {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	fs := faultfs.NewMem(4)
	r, err := Open(Config{
		Primary:      addr,
		WAL:          wal.Options{Dir: "rwal", FS: fs, SegmentSize: 2048, SnapshotEvery: 32},
		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("replica stuck at %d", r.Seq())
	}

	epoch, err := r.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch < 2 {
		t.Fatalf("promotion left epoch at %d", epoch)
	}
	select {
	case <-r.Promoted():
	default:
		t.Fatal("Promoted channel not closed")
	}
	nl := r.Log()
	if err := nl.Append(wal.Sample(timeseq.Time(1000), "temp", "post")); err != nil {
		t.Fatalf("promoted log refused an append: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nl.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(wal.Options{Dir: "rwal", FS: fs, SegmentSize: 2048, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Epoch(); got != epoch {
		t.Fatalf("epoch %d not persisted; reopened as %d", epoch, got)
	}
	if got := l2.Seq(); got != uint64(len(events))+1 {
		t.Fatalf("reopened seq = %d, want %d", got, len(events)+1)
	}
}

// TestWatchdogAutoPromotes: with PromoteAfter set, losing the primary for
// long enough promotes the replica without operator action.
func TestWatchdogAutoPromotes(t *testing.T) {
	lp, stopPrimary, addr := newTestPrimary(t, 1<<16, 1<<20)
	events := testEvents(5)
	for _, e := range events {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Open(Config{
		Primary:      addr,
		WAL:          wal.Options{Dir: "rwal", FS: faultfs.NewMem(5), SegmentSize: 2048, SnapshotEvery: 32},
		RetryBackoff: time.Millisecond, RetryBackoffMax: 10 * time.Millisecond, Seed: 11,
		HeartbeatTimeout: 100 * time.Millisecond,
		PromoteAfter:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("replica stuck at %d", r.Seq())
	}

	stopPrimary() // the primary vanishes
	select {
	case <-r.Promoted():
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never promoted after the primary vanished")
	}
	if got := r.Repl.Promotions.Load(); got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if got := r.Epoch(); got < 2 {
		t.Fatalf("auto-promotion left epoch at %d", got)
	}
}
