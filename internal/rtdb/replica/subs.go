package replica

import (
	"rtc/internal/deadline"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/sub"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// Standby standing queries: a hot standby accepts soft and deadline-free
// subscriptions and pushes each due tick evaluated against the replicated
// mirror, marked Degraded — the same quality class its aperiodic degraded
// queries carry. Firm subscriptions are refused read-only, exactly like
// firm queries: a standby cannot promise a firm per-tick deadline because
// its clock only moves when the primary's batches arrive.
//
// Time on a standby is the replicated horizon (chronon of the newest
// applied event), so ticks fall due when a batch advances the horizon past
// them — the tailer calls serveSubTicks after every applied batch, the only
// moment the standby's virtual clock moves. A batch that jumps the horizon
// far ahead makes a burst of ticks due at once; each is re-checked against
// its translated envelope, so stale ticks expire (counted cursors, not
// silent skips) and only envelopes that still clear their decay are served.
//
// There is no delivery queue on this path: pushes are written directly to
// the connection under its write lock, so every scheduled tick reaches a
// terminal outcome — pushed, expired by admission, or dropped on a write
// failure — at serve time, and the push conservation law holds on the
// standby's own metrics block with nothing parked in flight. The SubOpen
// Depth field is therefore ignored here.

// rsub is one standby-attached subscription. All fields are guarded by
// r.smu; the write to its connection happens under the sconn write lock.
type rsub struct {
	id      uint64
	spec    sub.Spec
	next    timeseq.Time // next due tick on the replicated horizon
	cursor  uint64       // last assigned cursor
	expired uint64       // cumulative admission-expired ticks, this attachment
	dropped uint64       // cumulative write-failure drops, this attachment
}

// serveSubOpen admits or refuses one SubOpen/SubResume on the standby.
// Firm envelopes are turned away read-only; a soft or deadline-free
// envelope is translated through the same remaining = D−E rule as every
// other frame and admitted when the catalog and the mirror can serve it.
func (r *Replica) serveSubOpen(c *sconn, m rtwire.SubOpen, after uint64) []byte {
	if m.Kind == deadline.Firm {
		return rtwire.Err{ID: m.ID, Code: rtwire.CodeReadOnly, Msg: "standby: firm subscriptions go to the primary"}.Encode()
	}
	qr, expired := netserve.Translate(rtwire.Query{
		Query: m.Query, Kind: m.Kind, Deadline: m.Deadline, Elapsed: m.Elapsed,
		MinUseful: m.MinUseful, Decay: m.Decay,
	})
	now := r.chronon()
	r.mu.Lock()
	_, known := r.cfg.Catalog[m.Query]
	mirror := r.db != nil
	r.mu.Unlock()
	if expired || m.Period == 0 || !known || !mirror {
		return rtwire.SubAck{ID: m.ID, State: rtwire.SubRefused, Cursor: after, Chronon: now}.Encode()
	}
	s := &rsub{
		id: m.ID,
		spec: sub.Spec{
			Query: m.Query, Period: m.Period, Kind: m.Kind,
			Deadline: qr.Deadline, MinUseful: m.MinUseful, U: qr.U,
		},
		next: now + m.Period, cursor: after,
	}
	r.smu.Lock()
	if r.rsubs == nil {
		r.rsubs = make(map[*sconn]map[uint64]*rsub)
	}
	subs := r.rsubs[c]
	if subs == nil {
		subs = make(map[uint64]*rsub)
		r.rsubs[c] = subs
	}
	if _, dup := subs[m.ID]; dup {
		r.smu.Unlock()
		return rtwire.Err{ID: m.ID, Code: rtwire.CodeBadRequest, Msg: "subscription id already in use"}.Encode()
	}
	subs[m.ID] = s
	r.smu.Unlock()
	r.Metrics.SubsOpened.Add(1)
	return rtwire.SubAck{ID: m.ID, State: rtwire.SubAdmitted, Cursor: after, Chronon: now}.Encode()
}

// serveSubCancel detaches one standby subscription; the closing ack carries
// the last assigned cursor, the resume point for wherever the client
// reattaches.
func (r *Replica) serveSubCancel(c *sconn, id uint64) []byte {
	r.smu.Lock()
	s := r.rsubs[c][id]
	if s != nil {
		delete(r.rsubs[c], id)
	}
	r.smu.Unlock()
	if s == nil {
		return rtwire.Err{ID: id, Code: rtwire.CodeBadRequest, Msg: "unknown subscription"}.Encode()
	}
	r.Metrics.SubsClosed.Add(1)
	return rtwire.SubAck{ID: id, State: rtwire.SubClosed, Cursor: s.cursor, Chronon: r.chronon()}.Encode()
}

// dropConnSubs detaches everything a vanished connection still had
// attached. Nothing is ever parked in a queue on the standby path, so there
// is nothing to book as dropped — every scheduled tick already reached its
// terminal outcome when it was served.
func (r *Replica) dropConnSubs(c *sconn) {
	r.smu.Lock()
	subs := r.rsubs[c]
	delete(r.rsubs, c)
	r.smu.Unlock()
	if n := uint64(len(subs)); n > 0 {
		r.Metrics.SubsClosed.Add(n)
	}
}

// mirrorEval is one cached evaluation: the mirror is frozen between batch
// applies, so every tick due in the same horizon advance sees the same
// answer and one catalog call per query name serves them all.
type mirrorEval struct {
	answers   []string
	evaluated bool
}

// serveSubTicks serves every subscription tick the replicated horizon has
// crossed. The tailer calls it after each applied batch. It holds smu for
// the sweep — a slow standby subscriber can stall the sweep up to one write
// timeout, the same exposure the PromoteInfo broadcast accepts — and takes
// mu only transiently inside evalMirror (mu holders never take smu, so the
// smu→mu order is safe).
func (r *Replica) serveSubTicks() {
	r.smu.Lock()
	defer r.smu.Unlock()
	if len(r.rsubs) == 0 {
		return
	}
	now := r.chronon()
	evals := make(map[string]mirrorEval)
	for c, subs := range r.rsubs {
		for _, s := range subs {
			r.serveDueLocked(c, s, now, evals)
		}
	}
}

// serveDueLocked walks one subscription's due ticks up to the horizon.
// Every tick consumes a cursor and lands in exactly one terminal class:
// expired by per-tick admission, pushed, or dropped on a failed write.
// Caller holds smu.
func (r *Replica) serveDueLocked(c *sconn, s *rsub, now timeseq.Time, evals map[string]mirrorEval) {
	for s.next <= now {
		issue := s.next
		s.next += s.spec.Period
		s.cursor++
		r.Metrics.PushScheduled.Add(1)
		if !s.spec.Admissible(issue, now) {
			s.expired++
			r.Metrics.PushExpired.Add(1)
			continue
		}
		ev := r.evalMirror(s.spec.Query, evals)
		useful, late := s.spec.Score(issue, now)
		missed := late || (!ev.evaluated && s.spec.Kind != deadline.None)
		if !ev.evaluated {
			useful = 0
		}
		r.Metrics.AccountDegraded(missed, s.spec.Kind != deadline.None)
		frame := rtwire.Push{
			ID: s.id, Cursor: s.cursor, Dropped: s.dropped, Expired: s.expired,
			Useful: useful, Missed: missed, Evaluated: ev.evaluated, Degraded: true,
			Issue: issue, Served: now, Answers: ev.answers,
		}.Encode()
		if c.write(frame, r.cfg.WriteTimeout) {
			r.Metrics.AccountPushed()
		} else {
			// The cursor is spent and the loss is on the books; the client's
			// next successful push carries the tally, and a resume continues
			// past it without a replay.
			s.dropped++
			r.Metrics.AccountPushDropped(1)
		}
	}
}

// evalMirror evaluates one catalog query against the mirror, memoized per
// horizon advance.
func (r *Replica) evalMirror(query string, evals map[string]mirrorEval) mirrorEval {
	if ev, ok := evals[query]; ok {
		return ev
	}
	var ev mirrorEval
	r.mu.Lock()
	if r.db != nil {
		if q, ok := r.cfg.Catalog[query]; ok {
			ev.answers = q(r.db.ViewNow())
			ev.evaluated = true
		}
	}
	r.mu.Unlock()
	evals[query] = ev
	return ev
}
