package replica

import (
	"bufio"
	"net"
	"testing"
	"time"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// standbyConn dials the standby listener and completes the handshake.
func standbyConn(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	_ = nc.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := nc.Write(rtwire.Hello{Client: "sub-probe"}.Encode()); err != nil {
		t.Fatal(err)
	}
	br := newFrameReader(nc)
	msg, err := readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := msg.(rtwire.Welcome); !ok || w.Role != rtwire.RoleStandby {
		t.Fatalf("handshake reply: %T %+v", msg, msg)
	}
	return nc, br
}

// TestStandbySubscriptions: the hot standby serves soft standing queries
// from the replicated horizon — admitted over the wire, pushed Degraded as
// batches advance the mirror, cancelled with a resumable cursor, resumed
// past it — while firm envelopes are refused read-only and every scheduled
// tick stays on the conservation books.
func TestStandbySubscriptions(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 1<<16, 1<<20)
	r := newTestReplica(t, addr)
	defer r.Close()
	r.Start()

	seq := uint64(0)
	append4 := func(from, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := lp.Append(wal.Sample(timeseq.Time(from+i), "temp", "30")); err != nil {
				t.Fatal(err)
			}
			seq++
		}
		if !r.WaitSeq(seq, 10*time.Second) {
			t.Fatalf("replica stuck at %d, want %d", r.Seq(), seq)
		}
	}
	// Catalog prologue (4 events) plus samples to horizon 4.
	for _, e := range testEvents(0) {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	append4(1, 4)

	la, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nc, br := standbyConn(t, la.String())

	// Firm subscriptions belong on the primary.
	if _, err := nc.Write(rtwire.SubOpen{
		ID: 9, Query: "status_q", Period: 2,
		Kind: deadline.Firm, Deadline: 4, MinUseful: 1,
	}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err := readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(rtwire.Err); !ok || e.Code != rtwire.CodeReadOnly {
		t.Fatalf("firm SubOpen reply: %T %+v", msg, msg)
	}
	// Unknown catalog queries are refused, not attached.
	if _, err := nc.Write(rtwire.SubOpen{ID: 9, Query: "nope_q", Period: 2}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := msg.(rtwire.SubAck); !ok || a.State != rtwire.SubRefused {
		t.Fatalf("unknown-query SubOpen reply: %T %+v", msg, msg)
	}

	// A soft subscription with a generous envelope: admitted at the current
	// horizon.
	if _, err := nc.Write(rtwire.SubOpen{
		ID: 1, Query: "status_q", Period: 2,
		Kind: deadline.Soft, Deadline: 50, MinUseful: 1,
	}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := msg.(rtwire.SubAck); !ok || a.ID != 1 || a.State != rtwire.SubAdmitted || a.Cursor != 0 {
		t.Fatalf("SubOpen ack: %T %+v", msg, msg)
	}

	// Advance the horizon from 4 to 12: ticks at 6, 8, 10, 12 fall due as
	// the batches apply.
	append4(5, 8)
	var pushes []rtwire.Push
	for len(pushes) < 4 {
		msg, err := readMsg(br)
		if err != nil {
			t.Fatalf("waiting for pushes (have %d): %v", len(pushes), err)
		}
		p, ok := msg.(rtwire.Push)
		if !ok {
			t.Fatalf("expected Push, got %T %+v", msg, msg)
		}
		pushes = append(pushes, p)
	}
	for i, p := range pushes {
		if p.ID != 1 || p.Cursor != uint64(i+1) {
			t.Fatalf("push %d: id %d cursor %d", i, p.ID, p.Cursor)
		}
		if !p.Degraded || !p.Evaluated || p.Missed {
			t.Fatalf("push %d flags: %+v", i, p)
		}
		if len(p.Answers) != 1 || p.Answers[0] != "high" {
			t.Fatalf("push %d answers: %v", i, p.Answers)
		}
		// The resuming client's audit: nothing below this cursor is
		// unaccounted.
		if received := uint64(i + 1); received != p.Cursor-p.Dropped-p.Expired {
			t.Fatalf("audit: received %d cursor %d dropped %d expired %d",
				received, p.Cursor, p.Dropped, p.Expired)
		}
	}

	// Cancel: the closing ack carries the resume point.
	if _, err := nc.Write(rtwire.SubCancel{ID: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	closed, ok := msg.(rtwire.SubAck)
	if !ok || closed.State != rtwire.SubClosed || closed.Cursor != 4 {
		t.Fatalf("cancel ack: %T %+v", msg, msg)
	}
	if _, err := nc.Write(rtwire.SubCancel{ID: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(rtwire.Err); !ok || e.Code != rtwire.CodeBadRequest {
		t.Fatalf("double cancel reply: %T %+v", msg, msg)
	}

	// Resume past the held cursor: delivery continues at cursor+1 with
	// fresh tallies — the failover landing path.
	if _, err := nc.Write(rtwire.SubResume{
		ID: 2, Query: "status_q", Period: 2,
		Kind: deadline.Soft, Deadline: 50, MinUseful: 1,
		AfterCursor: closed.Cursor,
	}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := msg.(rtwire.SubAck); !ok || a.ID != 2 || a.State != rtwire.SubAdmitted || a.Cursor != closed.Cursor {
		t.Fatalf("resume ack: %T %+v", msg, msg)
	}
	append4(13, 4)
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := msg.(rtwire.Push); !ok || p.ID != 2 || p.Cursor != closed.Cursor+1 ||
		p.Dropped != 0 || p.Expired != 0 || !p.Degraded {
		t.Fatalf("first resumed push: %T %+v", msg, msg)
	}

	// Quiesce before reading the books: Close waits out the tailer and the
	// listener, so every scheduled tick has reached its terminal outcome.
	nc.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics.Snapshot()
	if m.SubsOpened != 2 || m.SubsClosed != 2 {
		t.Errorf("subs opened/closed = %d/%d, want 2/2", m.SubsOpened, m.SubsClosed)
	}
	if m.PushScheduled == 0 || m.PushAccounted() != m.PushScheduled {
		t.Errorf("push conservation: scheduled %d accounted %d", m.PushScheduled, m.PushAccounted())
	}
	if m.Degraded == 0 {
		t.Errorf("standby pushes did not account Degraded")
	}
}

// TestStandbySubExpiry: a batch that jumps the horizon far past a tight
// soft envelope expires the stale ticks — counted cursor gaps the next
// delivered push carries — instead of serving answers whose usefulness
// already decayed to nothing.
func TestStandbySubExpiry(t *testing.T) {
	lp, _, addr := newTestPrimary(t, 1<<16, 1<<20)
	r := newTestReplica(t, addr)
	defer r.Close()
	r.Start()

	seq := uint64(0)
	for _, e := range testEvents(0) {
		if err := lp.Append(e); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	if err := lp.Append(wal.Sample(1, "temp", "30")); err != nil {
		t.Fatal(err)
	}
	seq++
	if !r.WaitSeq(seq, 10*time.Second) {
		t.Fatalf("replica stuck at %d, want %d", r.Seq(), seq)
	}
	la, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nc, br := standbyConn(t, la.String())

	// Period 1, soft deadline 2, no decay floor: a tick more than one
	// chronon stale at serve time is inadmissible.
	if _, err := nc.Write(rtwire.SubOpen{
		ID: 1, Query: "status_q", Period: 1,
		Kind: deadline.Soft, Deadline: 2,
	}.Encode()); err != nil {
		t.Fatal(err)
	}
	msg, err := readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := msg.(rtwire.SubAck); !ok || a.State != rtwire.SubAdmitted {
		t.Fatalf("SubOpen ack: %T %+v", msg, msg)
	}

	// One sample that leaps the horizon from 1 to 20: ticks 2..20 all fall
	// due in one advance, and only the freshest survive admission.
	if err := lp.Append(wal.Sample(20, "temp", "30")); err != nil {
		t.Fatal(err)
	}
	seq++
	if !r.WaitSeq(seq, 10*time.Second) {
		t.Fatal("replica stuck behind the leap")
	}
	msg, err = readMsg(br)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := msg.(rtwire.Push)
	if !ok {
		t.Fatalf("expected Push, got %T %+v", msg, msg)
	}
	if p.Expired == 0 {
		t.Fatalf("no ticks expired across the leap: %+v", p)
	}
	// The audit arithmetic still closes the gap exactly.
	if p.Cursor != 1+p.Dropped+p.Expired {
		t.Fatalf("first delivered push: cursor %d dropped %d expired %d",
			p.Cursor, p.Dropped, p.Expired)
	}

	nc.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics.Snapshot()
	if m.PushExpired == 0 || m.PushAccounted() != m.PushScheduled {
		t.Errorf("expiry books: scheduled %d accounted %d expired %d",
			m.PushScheduled, m.PushAccounted(), m.PushExpired)
	}
}
