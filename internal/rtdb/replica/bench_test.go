package replica

import (
	"testing"
	"time"

	"rtc/internal/faultfs"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/timeseq"
)

// BenchmarkReplicaCatchup measures a cold follower catching up on an
// existing history over loopback: dial, subscribe from zero, stream every
// segment, ack — per event.
func BenchmarkReplicaCatchup(b *testing.B) {
	const n = 512
	lp, _, addr := newTestPrimary(b, 1<<20, 1<<30)
	for _, e := range testEvents(n) {
		if err := lp.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	total := lp.Seq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(Config{
			Primary:      addr,
			WAL:          wal.Options{Dir: "rwal", FS: faultfs.NewMem(uint64(i))},
			RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		if !r.WaitSeq(total, 30*time.Second) {
			b.Fatalf("catch-up stuck at %d/%d", r.Seq(), total)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/event")
}

// BenchmarkFailover measures the promotion path: a synced standby loses its
// primary, fences the epoch, and accepts its first write as the new
// primary. Setup (primary, stream, sync) is excluded from the timing.
func BenchmarkFailover(b *testing.B) {
	const n = 64
	events := testEvents(n)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lp, stop, addr := newTestPrimary(b, 1<<20, 1<<30)
		for _, e := range events {
			if err := lp.Append(e); err != nil {
				b.Fatal(err)
			}
		}
		r, err := Open(Config{
			Primary:      addr,
			WAL:          wal.Options{Dir: "rwal", FS: faultfs.NewMem(uint64(i))},
			RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		if !r.WaitSeq(lp.Seq(), 30*time.Second) {
			b.Fatalf("sync stuck at %d", r.Seq())
		}
		stop() // the primary is gone
		b.StartTimer()

		if _, err := r.Promote(); err != nil {
			b.Fatal(err)
		}
		nl := r.Log()
		if err := nl.Append(wal.Sample(timeseq.Time(100000+i), "temp", "post")); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		if err := nl.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
