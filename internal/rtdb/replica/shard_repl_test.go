package replica

import (
	"fmt"
	"testing"
	"time"

	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
)

// TestShardReplication: each listener of a sharded set carries its own
// shard's replication stream — a follower subscribed to shard k replicates
// exactly shard k's WAL, not the union of the deployment.
func TestShardReplication(t *testing.T) {
	const shards = 2
	logs := make([]*wal.Log, shards)
	for i := range logs {
		l, err := wal.Open(wal.Options{Dir: "wal", FS: faultfs.NewMem(uint64(i + 10)), Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	sp := rtdb.Spec{Invariants: map[string]rtdb.Value{"limit": "50"}}
	for i := 0; i < 4*shards; i++ {
		sp.Images = append(sp.Images, &rtdb.ImageObject{Name: fmt.Sprintf("obj-%02d", i), Period: 5})
	}
	ss, err := server.NewSharded(server.ShardedConfig{
		Base: server.Config{Spec: sp}, Shards: shards, Logs: logs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss.Start()
	set := netserve.NewShardSet(ss, netserve.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		ReplBatch:         4, ReplWindow: 16, TailBuffer: 64,
	})
	addrs := make([]string, len(set))
	for i, ns := range set {
		a, err := ns.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a.String()
	}
	t.Cleanup(func() {
		for _, ns := range set {
			_ = ns.Close()
		}
		ss.Stop()
	})

	const followShard = 1
	r, err := Open(Config{
		Primary: addrs[followShard],
		WAL:     wal.Options{Dir: "rwal", FS: faultfs.NewMem(99), Sync: true},
		Name:    "shard-follower",
		Catalog: rtdb.Catalog{},
		Seed:    7,

		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()

	// Drive both shards through their owner sessions; only followShard's
	// stream must reach the replica.
	for i := 0; i < 4*shards; i++ {
		obj := fmt.Sprintf("obj-%02d", i)
		sess := ss.Session(0)
		if err := sess.InjectSample(obj, "7"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}

	want := logs[followShard].Seq()
	if !r.WaitSeq(want, 10*time.Second) {
		t.Fatalf("replica never reached shard %d's seq %d (stuck at %d)", followShard, want, r.Seq())
	}
	if d := logs[followShard].State().Diff(r.Log().State()); d != "" {
		t.Fatalf("replica state != shard %d state: %s", followShard, d)
	}
	// The stream really was per-shard: the replica must know nothing about
	// the other shard's objects.
	for name := range r.Log().State().Images {
		if sh := rtwire.ShardOf(name, shards); sh != followShard {
			t.Fatalf("replica holds %q, owned by shard %d (followed %d)", name, sh, followShard)
		}
	}
	// And the union view is still whole on the primary side.
	if h := ss.HistoryHorizon(); h == 0 {
		t.Fatal("sharded deployment horizon never advanced")
	}
}
