// Package replica is the follower side of rtdbd replication: a node that
// dials the primary, tails its write-ahead log over the rtwire replication
// frames (Subscribe → WalBatch/WalAck), applies every event through the
// same append-and-apply path the primary used, and serves hot-standby
// reads — temporal as-of queries, metrics, and degraded (soft or
// deadline-less) catalog queries — while refusing writes and firm-deadline
// queries with CodeReadOnly.
//
// Correctness rests on three invariants:
//
//   - Byte identity. A WalBatch carries the raw WAL record payloads; the
//     replica re-frames them through wal.Log.Append, so after applying
//     sequence n its log prefix is byte-identical to the primary's first n
//     frames and the recovery invariant (state built from log == live
//     state) holds transitively across the network hop.
//   - Sequence discipline. Events apply in order, exactly once: a batch
//     overlapping the local tail has its duplicate prefix skipped; a batch
//     starting past tail+1 is a gap and forces a re-subscribe from the
//     local tail; a catch-up target that the primary compacted away
//     arrives as a full-state resync (Snap frames → wal.Bootstrap).
//   - Fencing. Every replication frame carries the primary's epoch. A
//     frame with an epoch older than the replica's own persisted epoch is
//     from a deposed primary and is refused; a newer epoch is adopted and
//     persisted before any of its events apply. Promote bumps the epoch,
//     so a promoted replica can never be recaptured by its old primary.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/faultnet"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
	"rtc/internal/vtime"
)

// Config describes one replica node.
type Config struct {
	// Primary is the address of the primary to follow.
	Primary string
	// WAL configures the replica's own write-ahead log (its durability is
	// independent of the primary's: a replica with Sync on survives its own
	// crashes at the sequence it acked).
	WAL wal.Options
	// Name identifies this follower in its Subscribe frame.
	Name string
	// Catalog and Registry give the standby its degraded-mode query
	// semantics; with a nil Catalog every query is refused read-only.
	Catalog  rtdb.Catalog
	Registry rtdb.DeriveRegistry

	// DialTimeout bounds one connect to the primary (default 5s).
	DialTimeout time.Duration
	// RetryBackoff / RetryBackoffMax bound the jittered reconnect pauses
	// (defaults 50ms / 2s); Seed makes the schedule reproducible.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	Seed            uint64
	// HeartbeatTimeout cuts the primary connection after this much inbound
	// silence (default 45s — 3× the primary's default beacon interval).
	HeartbeatTimeout time.Duration
	// PromoteAfter, when positive, promotes the replica automatically once
	// the primary has been silent (counting failed redials) for this long.
	// Zero means promotion is manual (Promote).
	PromoteAfter time.Duration
	// HandshakeTimeout / WriteTimeout bound the standby listener's
	// handshake and frame writes (defaults 5s / 10s).
	HandshakeTimeout time.Duration
	WriteTimeout     time.Duration
	// Dialer makes the tailer's connections to the primary (default
	// faultnet.OS — a real TCP dial). Torture tests inject partitions and
	// stalls into the replication stream through it.
	Dialer faultnet.Dialer
}

func (c *Config) defaults() {
	if c.Name == "" {
		c.Name = "replica"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano())
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 45 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Dialer == nil {
		c.Dialer = faultnet.OS{}
	}
}

// Metrics is the replica's counter block (the standby serving path also
// maintains a full server.Metrics for the query conservation law).
type Metrics struct {
	BatchesIn       atomic.Uint64 // WalBatch frames applied
	EventsApplied   atomic.Uint64 // events appended to the local log
	DupSkipped      atomic.Uint64 // duplicate events skipped (overlap with tail)
	GapResubscribes atomic.Uint64 // batches past tail+1 → re-subscribe
	Resyncs         atomic.Uint64 // full-state bootstraps completed
	StaleBatches    atomic.Uint64 // frames refused for an old fencing epoch
	Reconnects      atomic.Uint64 // tailer redials after a lost stream
	Promotions      atomic.Uint64 // 0 or 1
	MirrorErrors    atomic.Uint64 // events the standby query mirror rejected
}

// Replication protocol states surfaced as errors inside the tailer.
var (
	errStaleBatch = errors.New("replica: batch from a deposed primary epoch")
	errGap        = errors.New("replica: sequence gap; re-subscribe required")
)

// histSnap is one published as-of snapshot; the standby listener reads it
// lock-free while the tailer publishes.
type histSnap struct {
	at  timeseq.Time
	seq uint64
	db  *rtdb.HistoricalDatabase
}

// Replica is one follower node.
type Replica struct {
	cfg Config

	mu          sync.Mutex // guards log/mirror/pendingSnap/conn/promoted/seqCh
	log         *wal.Log
	db          *rtdb.DB // degraded-query mirror (nil: queries refused)
	sched       *vtime.Scheduler
	pendingSnap []wal.Event
	conn        net.Conn // live tailer connection
	promoted    bool
	seqCh       chan struct{} // closed and replaced on every applied batch

	hist      atomic.Pointer[histSnap]
	lastHeard atomic.Int64 // unix nanos of the newest primary frame
	connected atomic.Bool  // a subscription succeeded at least once

	Metrics server.Metrics
	Repl    Metrics

	cmu    sync.Mutex // guards the standby listener's connection set
	ln     net.Listener
	sconns map[*sconn]struct{}

	smu   sync.Mutex // guards the standby subscription registry
	rsubs map[*sconn]map[uint64]*rsub

	promotedCh chan struct{}
	quit       chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup
}

// Open loads (or creates) the replica's local WAL and builds the standby
// query mirror from whatever state it already holds. The tailer is not
// started; call Start.
func Open(cfg Config) (*Replica, error) {
	cfg.defaults()
	l, err := wal.Open(cfg.WAL)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:        cfg,
		log:        l,
		seqCh:      make(chan struct{}),
		sconns:     make(map[*sconn]struct{}),
		promotedCh: make(chan struct{}),
		quit:       make(chan struct{}),
	}
	r.lastHeard.Store(time.Now().UnixNano())
	r.rebuildMirrorLocked()
	r.publishLocked()
	return r, nil
}

// Start launches the tailer (and the auto-promotion watchdog when
// configured).
func (r *Replica) Start() {
	r.wg.Add(1)
	go r.tail()
	if r.cfg.PromoteAfter > 0 {
		r.wg.Add(1)
		go r.watchdog()
	}
}

// Seq returns the sequence number of the newest applied event.
func (r *Replica) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Seq()
}

// Epoch returns the replica's persisted fencing epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Epoch()
}

// Log exposes the replica's WAL. Only safe to use after Close or Promote
// has stopped the tailer — the promotion path hands it to a full server.
func (r *Replica) Log() *wal.Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log
}

// Promoted returns a channel closed when the replica promotes itself (or
// is promoted).
func (r *Replica) Promoted() <-chan struct{} { return r.promotedCh }

// WaitSeq blocks until the replica has applied at least seq, or the
// timeout (or Close) intervenes.
func (r *Replica) WaitSeq(seq uint64, timeout time.Duration) bool {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		r.mu.Lock()
		if r.log.Seq() >= seq {
			r.mu.Unlock()
			return true
		}
		ch := r.seqCh
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return false
		case <-r.quit:
			return false
		}
	}
}

// Promote fences the old primary and turns this node into the new one: the
// tailer stops, the epoch is bumped and persisted, and every connected
// standby client is told (PromoteInfo) so it can follow the promotion.
// The caller then owns Log() and typically builds a full server on it.
func (r *Replica) Promote() (uint64, error) {
	r.mu.Lock()
	if r.promoted {
		e := r.log.Epoch()
		r.mu.Unlock()
		return e, nil
	}
	r.promoted = true
	if r.conn != nil {
		r.conn.Close()
	}
	epoch, err := r.log.BumpEpoch()
	seq := r.log.Seq()
	r.mu.Unlock()
	close(r.promotedCh)
	r.Repl.Promotions.Add(1)
	if err != nil {
		return 0, err
	}
	frame := rtwire.PromoteInfo{Epoch: epoch, Seq: seq}.Encode()
	r.cmu.Lock()
	conns := make([]*sconn, 0, len(r.sconns))
	for c := range r.sconns {
		conns = append(conns, c)
	}
	r.cmu.Unlock()
	for _, c := range conns {
		c.write(frame, r.cfg.WriteTimeout)
	}
	return epoch, nil
}

// Close stops the tailer and the listener and closes the local WAL. After
// a Promote, the WAL is left open for the promoted server to own.
func (r *Replica) Close() error {
	r.closeOnce.Do(func() {
		close(r.quit)
		r.mu.Lock()
		if r.conn != nil {
			r.conn.Close()
		}
		r.mu.Unlock()
		r.cmu.Lock()
		if r.ln != nil {
			_ = r.ln.Close()
		}
		for c := range r.sconns {
			_ = c.nc.Close()
		}
		r.cmu.Unlock()
	})
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return nil // the promoted server owns the log now
	}
	return r.log.Close()
}

// tail is the follower loop: connect, subscribe, stream, and on any loss
// redial with decorrelated-jitter pauses.
func (r *Replica) tail() {
	defer r.wg.Done()
	rng := rand.New(rand.NewSource(int64(r.cfg.Seed)))
	pause := r.cfg.RetryBackoff
	for {
		select {
		case <-r.quit:
			return
		case <-r.promotedCh:
			return
		default:
		}
		if err := r.streamOnce(); err == nil {
			pause = r.cfg.RetryBackoff // clean end (Bye): reset the walk
		}
		select {
		case <-r.quit:
			return
		case <-r.promotedCh:
			return
		default:
		}
		r.Repl.Reconnects.Add(1)
		// Decorrelated jitter, as in the client: next ∈ [base, 3·prev].
		next := r.cfg.RetryBackoff
		if hi := 3 * pause; hi > next {
			next += time.Duration(rng.Int63n(int64(hi-next) + 1))
		}
		if next > r.cfg.RetryBackoffMax {
			next = r.cfg.RetryBackoffMax
		}
		pause = next
		select {
		case <-time.After(next):
		case <-r.quit:
			return
		case <-r.promotedCh:
			return
		}
	}
}

// streamOnce runs one subscription: handshake, Subscribe from the local
// tail, then apply WalBatch frames until the stream dies.
func (r *Replica) streamOnce() error {
	conn, err := r.cfg.Dialer.DialTimeout("tcp", r.cfg.Primary, r.cfg.DialTimeout)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.promoted {
		r.mu.Unlock()
		conn.Close()
		return nil
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.conn == conn {
			r.conn = nil
		}
		r.mu.Unlock()
		conn.Close()
	}()

	_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	if _, err := conn.Write(rtwire.Hello{Client: r.cfg.Name}.Encode()); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(r.cfg.DialTimeout))
	br := newFrameReader(conn)
	msg, err := readMsg(br)
	if err != nil {
		return err
	}
	w, ok := msg.(rtwire.Welcome)
	if !ok {
		return fmt.Errorf("replica: handshake answered with %T", msg)
	}
	if w.Epoch < r.Epoch() {
		// The "primary" is itself deposed; refuse to follow it.
		r.Repl.StaleBatches.Add(1)
		return fmt.Errorf("replica: primary %s announces stale epoch %d (have %d)",
			r.cfg.Primary, w.Epoch, r.Epoch())
	}
	_ = r.adoptEpoch(w.Epoch)

	_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	sub := rtwire.Subscribe{AfterSeq: r.Seq(), Follower: r.cfg.Name}
	if _, err := conn.Write(sub.Encode()); err != nil {
		return err
	}
	r.connected.Store(true)
	r.lastHeard.Store(time.Now().UnixNano())

	for {
		_ = conn.SetReadDeadline(time.Now().Add(r.cfg.HeartbeatTimeout))
		msg, err := readMsg(br)
		if err != nil {
			return err
		}
		r.lastHeard.Store(time.Now().UnixNano())
		switch m := msg.(type) {
		case rtwire.WalBatch:
			switch err := r.applyBatch(m); {
			case err == nil:
				// The horizon moved: serve every standby subscription tick it
				// crossed before acking, so a client that saw the ack'd seq
				// reflected in a query also has the pushes that apply implies.
				r.serveSubTicks()
			case errors.Is(err, errGap):
				return err // redial; Subscribe restarts from the local tail
			default:
				return err
			}
			_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
			if _, err := conn.Write(rtwire.WalAck{Seq: r.Seq()}.Encode()); err != nil {
				return err
			}
		case rtwire.Heartbeat:
			if m.Epoch < r.Epoch() {
				r.Repl.StaleBatches.Add(1)
				return errStaleBatch
			}
			_ = r.adoptEpoch(m.Epoch)
		case rtwire.PromoteInfo:
			_ = r.adoptEpoch(m.Epoch)
		case rtwire.Err:
			return fmt.Errorf("replica: primary refused: %v", m)
		case rtwire.Bye:
			return nil
		default:
			// Tolerated: unknown-but-decodable frames don't kill the stream.
		}
	}
}

// applyBatch folds one WalBatch into the local log and mirror. It is the
// unit the protocol tests drive directly: epoch fencing, duplicate
// skipping, gap detection, and snapshot bootstrap all live here.
func (r *Replica) applyBatch(b rtwire.WalBatch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b.Epoch < r.log.Epoch() {
		r.Repl.StaleBatches.Add(1)
		return errStaleBatch
	}
	if err := r.log.AdoptEpoch(b.Epoch); err != nil {
		return err
	}

	switch b.Snap {
	case rtwire.SnapPart:
		for _, p := range b.Events {
			e, ok := wal.DecodeEvent([]byte(p))
			if !ok {
				r.pendingSnap = nil
				return fmt.Errorf("replica: undecodable snapshot record")
			}
			r.pendingSnap = append(r.pendingSnap, e)
		}
		return nil
	case rtwire.SnapFinal:
		events := r.pendingSnap
		r.pendingSnap = nil
		if err := r.log.Close(); err != nil {
			return err
		}
		l, err := wal.Bootstrap(r.cfg.WAL, events, b.SnapSeq, b.SnapLastAt)
		if err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		r.log = l
		if err := r.log.AdoptEpoch(b.Epoch); err != nil {
			return err
		}
		r.rebuildMirrorLocked()
		r.Repl.Resyncs.Add(1)
		r.Repl.BatchesIn.Add(1)
		r.finishApplyLocked()
		return nil
	}

	seq := r.log.Seq()
	if b.FirstSeq > seq+1 {
		r.Repl.GapResubscribes.Add(1)
		return errGap
	}
	// Decode the fresh suffix, then land it with ONE fsync via AppendBatch —
	// the primary ships whole commit batches, and the follower pays one
	// fsync per shipped batch instead of one per event, so its durability
	// cadence matches the primary's group-commit cadence.
	fresh := make([]wal.Event, 0, len(b.Events))
	for i, p := range b.Events {
		es := b.FirstSeq + uint64(i)
		if es <= seq {
			r.Repl.DupSkipped.Add(1)
			continue
		}
		e, ok := wal.DecodeEvent([]byte(p))
		if !ok {
			return fmt.Errorf("replica: undecodable record at seq %d", es)
		}
		fresh = append(fresh, e)
	}
	applied, aerr := r.log.AppendBatch(fresh)
	// On a mid-batch error exactly the prefix [0,applied) reached the log's
	// state; the mirror must absorb the same prefix or degraded reads drift.
	for _, e := range fresh[:applied] {
		r.mirrorApplyLocked(e)
		r.Repl.EventsApplied.Add(1)
	}
	if aerr != nil {
		return aerr
	}
	r.Repl.BatchesIn.Add(1)
	r.finishApplyLocked()
	return nil
}

// finishApplyLocked publishes a fresh as-of snapshot and wakes WaitSeq
// callers. Caller holds mu.
func (r *Replica) finishApplyLocked() {
	r.publishLocked()
	close(r.seqCh)
	r.seqCh = make(chan struct{})
}

// publishLocked converts the log state's sample histories into the
// HistoricalDatabase the standby's as-of reads are served from.
func (r *Replica) publishLocked() {
	st := r.log.State()
	r.hist.Store(&histSnap{at: st.LastAt, seq: st.Events, db: st.Historical(st.LastAt)})
}

// rebuildMirrorLocked reconstructs the degraded-query mirror from the log
// state, exactly as server recovery does: catalog via Build (derivations
// re-bound by name), then samples re-injected in timestamp order. A state
// the registry cannot rebuild (unknown derived object) leaves the mirror
// nil — queries are then refused read-only rather than answered wrongly.
func (r *Replica) rebuildMirrorLocked() {
	r.db, r.sched = nil, nil
	if r.cfg.Catalog == nil {
		return
	}
	st := r.log.State()
	sched := vtime.New()
	db := rtdb.New(sched)
	if err := st.Build(db, r.cfg.Registry); err != nil {
		r.Repl.MirrorErrors.Add(1)
		return
	}
	type rec struct {
		at           timeseq.Time
		image, value string
		seq          int
	}
	var all []rec
	for name, img := range st.Images {
		for i, smp := range img.Samples {
			all = append(all, rec{at: smp.At, image: name, value: smp.Value, seq: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].image != all[j].image {
			return all[i].image < all[j].image
		}
		return all[i].seq < all[j].seq
	})
	for _, s := range all {
		sched.RunUntil(s.at)
		if err := db.InjectSample(s.image, s.value); err != nil {
			r.Repl.MirrorErrors.Add(1)
			return
		}
	}
	sched.RunUntil(st.LastAt)
	r.db, r.sched = db, sched
}

// mirrorApplyLocked folds one live event into the query mirror.
func (r *Replica) mirrorApplyLocked(e wal.Event) {
	if r.db == nil {
		return
	}
	switch e.Kind {
	case wal.KindInvariant:
		r.db.AddInvariant(e.Name, e.Value)
	case wal.KindImage:
		if len(e.Args) != 1 {
			r.Repl.MirrorErrors.Add(1)
			return
		}
		p, err := strconv.ParseUint(e.Args[0], 10, 64)
		if err != nil {
			r.Repl.MirrorErrors.Add(1)
			return
		}
		r.db.AddImage(&rtdb.ImageObject{Name: e.Name, Period: timeseq.Time(p)})
	case wal.KindDerived:
		fn, ok := r.cfg.Registry[e.Name]
		if !ok {
			// The mirror can no longer answer queries over this object;
			// drop it entirely rather than serve wrong answers.
			r.Repl.MirrorErrors.Add(1)
			r.db, r.sched = nil, nil
			return
		}
		r.db.AddDerived(&rtdb.DerivedObject{Name: e.Name, Sources: e.Args, Derive: fn})
	case wal.KindSample:
		r.sched.RunUntil(e.At)
		if err := r.db.InjectSample(e.Name, e.Value); err != nil {
			r.Repl.MirrorErrors.Add(1)
		}
	}
	// Firings and query issues are bookkeeping, not mirror state.
}

// adoptEpoch persists a newer primary epoch.
func (r *Replica) adoptEpoch(e uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.AdoptEpoch(e)
}

// watchdog auto-promotes once the primary has been silent for PromoteAfter.
// It only fires after at least one successful subscription — a replica that
// never reached any primary has nothing worth promoting.
func (r *Replica) watchdog() {
	defer r.wg.Done()
	tick := r.cfg.PromoteAfter / 4
	if tick <= 0 {
		tick = r.cfg.PromoteAfter
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !r.connected.Load() {
				continue
			}
			silent := time.Since(time.Unix(0, r.lastHeard.Load()))
			if silent >= r.cfg.PromoteAfter {
				_, _ = r.Promote()
				return
			}
		case <-r.promotedCh:
			return
		case <-r.quit:
			return
		}
	}
}
