package replica

import (
	"bufio"
	"net"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

// This file is the hot-standby serving surface: a lean rtwire listener that
// answers reads from the replicated state and refuses everything that only
// a primary may accept. Unlike netserve there is no session, no write
// queue, and no apply loop — every request is answered inline from either
// the published as-of snapshot (lock-free) or the query mirror (under mu).
//
// The serving contract:
//
//	Sample        → Err CodeReadOnly (accounted SamplesIn + SamplesRejected)
//	Query (firm)  → Err CodeReadOnly (accounted QueriesIn + QueriesRejected
//	                + RejectMiss, so the conservation law holds)
//	Query (soft / no deadline) → evaluated on the mirror, accounted through
//	                AccountDegraded — answered, but marked a distinct
//	                quality class
//	AsOf, MetricsReq, Flush, Heartbeat → served
//	Subscribe     → refused (replicas do not chain)
//	SubOpen / SubResume (firm) → Err CodeReadOnly; (soft / no deadline) →
//	                admitted and served from the replicated horizon with
//	                Degraded pushes (see subs.go)

// sconn is one standby client connection; wmu serializes frame writes so a
// PromoteInfo broadcast cannot interleave with a response.
type sconn struct {
	nc  net.Conn
	wmu chan struct{} // 1-token write lock usable with a deadline
}

func (c *sconn) write(frame []byte, timeout time.Duration) bool {
	select {
	case c.wmu <- struct{}{}:
	case <-time.After(timeout):
		return false
	}
	defer func() { <-c.wmu }()
	_ = c.nc.SetWriteDeadline(time.Now().Add(timeout))
	_, err := c.nc.Write(frame)
	return err == nil
}

// newFrameReader and readMsg keep the tailer and the listener on the same
// decode path.
func newFrameReader(nc net.Conn) *bufio.Reader { return bufio.NewReader(nc) }

func readMsg(br *bufio.Reader) (any, error) {
	f, err := rtwire.ReadFrame(br)
	if err != nil {
		return nil, err
	}
	return rtwire.Decode(f)
}

// Listen starts the standby listener on addr in a background goroutine and
// returns the bound address.
func (r *Replica) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return r.ServeOn(ln)
}

// ServeOn starts the standby serving loop on an already-bound listener —
// the injection point torture tests use to put the standby behind a
// faultnet fabric.
func (r *Replica) ServeOn(ln net.Listener) (net.Addr, error) {
	r.cmu.Lock()
	r.ln = ln
	r.cmu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			r.wg.Add(1)
			go r.serveConn(nc)
		}
	}()
	return ln.Addr(), nil
}

// role is what the standby announces: RoleStandby until promotion.
func (r *Replica) role() rtwire.Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return rtwire.RolePrimary
	}
	return rtwire.RoleStandby
}

// chronon is the virtual time the standby reports: the timestamp horizon of
// the replicated state.
func (r *Replica) chronon() timeseq.Time {
	if h := r.hist.Load(); h != nil {
		return h.at
	}
	return 0
}

func (r *Replica) serveConn(nc net.Conn) {
	defer r.wg.Done()
	defer nc.Close()
	c := &sconn{nc: nc, wmu: make(chan struct{}, 1)}

	_ = nc.SetReadDeadline(time.Now().Add(r.cfg.HandshakeTimeout))
	br := newFrameReader(nc)
	f, err := rtwire.ReadFrame(br)
	if err != nil || f.Kind != rtwire.KindHello {
		c.write(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "expected hello"}.Encode(), r.cfg.WriteTimeout)
		return
	}
	r.cmu.Lock()
	r.sconns[c] = struct{}{}
	r.cmu.Unlock()
	defer func() {
		r.dropConnSubs(c)
		r.cmu.Lock()
		delete(r.sconns, c)
		r.cmu.Unlock()
	}()
	c.write(rtwire.Welcome{
		Session: 0, Chronon: r.chronon(), Epoch: r.Epoch(), Role: r.role(),
		Shards: 1, Shard: 0,
	}.Encode(), r.cfg.WriteTimeout)

	var rbuf []byte // reused payload buffer; Decode copies fields out
	for {
		_ = nc.SetReadDeadline(time.Now().Add(2 * time.Minute))
		f, err := rtwire.ReadFrameBuf(br, &rbuf)
		if err != nil {
			return
		}
		msg, err := rtwire.Decode(f)
		if err != nil {
			c.write(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: err.Error()}.Encode(), r.cfg.WriteTimeout)
			continue
		}
		switch m := msg.(type) {
		case rtwire.Sample:
			r.Metrics.SamplesIn.Add(1)
			r.Metrics.SamplesRejected.Add(1)
			c.write(rtwire.Err{ID: m.ID, Code: rtwire.CodeReadOnly, Msg: "standby: writes go to the primary"}.Encode(), r.cfg.WriteTimeout)
		case rtwire.Query:
			c.write(r.serveQuery(m), r.cfg.WriteTimeout)
		case rtwire.AsOf:
			c.write(r.serveAsOf(m), r.cfg.WriteTimeout)
		case rtwire.MetricsReq:
			c.write(r.serveMetrics(m), r.cfg.WriteTimeout)
		case rtwire.Flush:
			// Nothing a standby accepts is ever pending.
			c.write(rtwire.Flushed{ID: m.ID, Chronon: r.chronon()}.Encode(), r.cfg.WriteTimeout)
		case rtwire.Heartbeat:
			c.write(rtwire.Heartbeat{
				Epoch: r.Epoch(), Chronon: r.chronon(), Seq: r.Seq(),
			}.Encode(), r.cfg.WriteTimeout)
		case rtwire.Subscribe:
			c.write(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "standby: replicas do not serve replication"}.Encode(), r.cfg.WriteTimeout)
		case rtwire.SubOpen:
			c.write(r.serveSubOpen(c, m, 0), r.cfg.WriteTimeout)
		case rtwire.SubResume:
			c.write(r.serveSubOpen(c, rtwire.SubOpen{
				ID: m.ID, Query: m.Query, Period: m.Period, Kind: m.Kind,
				Deadline: m.Deadline, Elapsed: m.Elapsed,
				MinUseful: m.MinUseful, Decay: m.Decay, Depth: m.Depth,
			}, m.AfterCursor), r.cfg.WriteTimeout)
		case rtwire.SubCancel:
			c.write(r.serveSubCancel(c, m.ID), r.cfg.WriteTimeout)
		case rtwire.Bye:
			return
		default:
			c.write(rtwire.Err{Code: rtwire.CodeBadRequest, Msg: "unexpected " + f.Kind.String()}.Encode(), r.cfg.WriteTimeout)
		}
	}
}

// serveQuery implements the degraded-query discipline described at the top
// of the file.
func (r *Replica) serveQuery(m rtwire.Query) []byte {
	if m.Kind == deadline.Firm {
		r.Metrics.QueriesIn.Add(1)
		r.Metrics.QueriesRejected.Add(1)
		r.Metrics.RejectMiss.Add(1)
		return rtwire.Err{ID: m.ID, Code: rtwire.CodeReadOnly, Msg: "standby: firm queries go to the primary"}.Encode()
	}
	qr, expired := netserve.Translate(m)
	now := r.chronon()
	if expired {
		r.Metrics.AccountExpired()
		return rtwire.Result{
			ID: m.ID, Missed: true, Issue: now, Served: now, ExpiredOnArrival: true,
		}.Encode()
	}

	r.mu.Lock()
	db := r.db
	var answers []string
	evaluated := false
	if db != nil {
		if q, ok := r.cfg.Catalog[qr.Query]; ok {
			answers = q(db.ViewNow())
			evaluated = true
		}
	}
	r.mu.Unlock()
	if db == nil {
		r.Metrics.QueriesIn.Add(1)
		r.Metrics.QueriesRejected.Add(1)
		if m.Kind != deadline.None {
			r.Metrics.RejectMiss.Add(1)
		}
		return rtwire.Err{ID: m.ID, Code: rtwire.CodeReadOnly, Msg: "standby: no query mirror available"}.Encode()
	}

	match := false
	if m.Candidate != "" {
		for _, a := range answers {
			if a == m.Candidate {
				match = true
				break
			}
		}
	}
	// Serving is instantaneous in chronon terms (no apply loop to wait
	// for); an unexpired soft query is therefore a hit, an unknown query
	// name a miss when a deadline rides on it.
	missed := !evaluated && m.Kind != deadline.None
	r.Metrics.AccountDegraded(missed, m.Kind != deadline.None)
	useful := qr.MinUseful
	if missed {
		useful = 0
	}
	return rtwire.Result{
		ID: m.ID, Answers: answers, Match: match, Useful: useful,
		Missed: missed, Evaluated: evaluated, Issue: now, Served: now,
	}.Encode()
}

func (r *Replica) serveAsOf(m rtwire.AsOf) []byte {
	r.Metrics.AsOfReads.Add(1)
	h := r.hist.Load()
	if h == nil {
		return rtwire.AsOfResult{ID: m.ID}.Encode()
	}
	out := rtwire.AsOfResult{ID: m.ID, Horizon: h.at}
	// Indexed timeline lookup — the same O(log history) path the primary
	// serves from, so a standby's as-of reads stay flat as the mirror ages.
	out.Value, out.OK = h.db.ValueAsOf(m.Image, m.At)
	return out.Encode()
}

func (r *Replica) serveMetrics(m rtwire.MetricsReq) []byte {
	pairs := r.Metrics.Snapshot().Pairs()
	wp := make([]rtwire.MetricPair, 0, len(pairs)+10)
	for _, p := range pairs {
		wp = append(wp, rtwire.MetricPair{Name: p.Name, Value: p.Value})
	}
	wp = append(wp,
		// wal_seq and epoch use the same names netserve reports, so
		// failover tooling reads one coordinate regardless of role.
		rtwire.MetricPair{Name: "wal_seq", Value: r.Seq()},
		rtwire.MetricPair{Name: "epoch", Value: r.Epoch()},
		rtwire.MetricPair{Name: "repl_seq", Value: r.Seq()},
		rtwire.MetricPair{Name: "repl_epoch", Value: r.Epoch()},
		rtwire.MetricPair{Name: "repl_batches_in", Value: r.Repl.BatchesIn.Load()},
		rtwire.MetricPair{Name: "repl_events_applied", Value: r.Repl.EventsApplied.Load()},
		rtwire.MetricPair{Name: "repl_dup_skipped", Value: r.Repl.DupSkipped.Load()},
		rtwire.MetricPair{Name: "repl_gap_resubscribes", Value: r.Repl.GapResubscribes.Load()},
		rtwire.MetricPair{Name: "repl_resyncs", Value: r.Repl.Resyncs.Load()},
		rtwire.MetricPair{Name: "repl_stale_batches", Value: r.Repl.StaleBatches.Load()},
		rtwire.MetricPair{Name: "repl_reconnects", Value: r.Repl.Reconnects.Load()},
		rtwire.MetricPair{Name: "repl_promotions", Value: r.Repl.Promotions.Load()},
	)
	return rtwire.Metrics{ID: m.ID, Pairs: wp}.Encode()
}
