package replica

import (
	"testing"
	"time"

	"rtc/internal/faultfs"
	"rtc/internal/rtdb"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
)

// TestBatchedShippingWatermark pins the replicated durability contract
// under group commit:
//
//   - a follower never sees an event before its covering fsync on the
//     primary (tail publication and catch-up are both durability-gated),
//   - whole commit batches ship as batches, so the follower's fsync
//     cadence tracks the shipped-batch count, not the event count,
//   - the follower-acked repl_durable watermark still converges to the
//     primary's tail once the batches land.
func TestBatchedShippingWatermark(t *testing.T) {
	memP := faultfs.NewMem(21)
	lp, err := wal.Open(wal.Options{
		Dir: "wal", FS: memP, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20,
		Sync: true, GroupWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Log: lp})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ns := netserve.New(srv, netserve.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		ReplBatch:         4, ReplWindow: 16, TailBuffer: 256,
	})
	addr, err := ns.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Stop(); ns.Close() })

	memR := faultfs.NewMem(22)
	r, err := Open(Config{
		Primary: addr.String(),
		WAL: wal.Options{
			Dir: "rwal", FS: memR, SegmentSize: 1 << 20, SnapshotEvery: 1 << 20,
			Sync: true,
		},
		Name:    "gc-follower",
		Catalog: testCatalog(), Registry: rtdb.DeriveRegistry{"status": testDerive},
		RetryBackoff: time.Millisecond, RetryBackoffMax: 20 * time.Millisecond,
		Seed: 9, HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()

	// Append a workload into the open (hour-long) window: everything is
	// written and applied on the primary but nothing is durable yet.
	events := testEvents(40)
	tickets := make([]*wal.Ticket, 0, len(events))
	for _, e := range events {
		tk, err := lp.AppendTicket(e, false)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// The follower must not apply any of it: undurable events are invisible
	// to both the live tail and the catch-up read.
	time.Sleep(100 * time.Millisecond)
	if got := r.Seq(); got != 0 {
		t.Fatalf("follower applied %d events before the primary's fsync", got)
	}

	baseSyncs := memR.Syncs()
	if err := lp.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if !r.WaitSeq(uint64(len(events)), 10*time.Second) {
		t.Fatalf("follower stuck at seq %d, want %d", r.Seq(), len(events))
	}

	// Watermark regression: the follower-acked repl_durable must converge
	// to the primary's tail under batched shipping.
	deadline := time.Now().Add(5 * time.Second)
	for ns.ReplDurable() != uint64(len(events)) {
		if time.Now().After(deadline) {
			t.Fatalf("repl_durable stuck at %d, want %d", ns.ReplDurable(), len(events))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fsync cadence: the batch release shipped the events in WalBatches and
	// the follower paid one fsync per batch (AppendBatch), not per event.
	batches := r.Repl.BatchesIn.Load()
	syncs := memR.Syncs() - baseSyncs
	if batches == 0 || batches >= uint64(len(events)) {
		t.Fatalf("shipping was not batched: %d batches for %d events", batches, len(events))
	}
	if syncs > batches+2 {
		t.Fatalf("follower paid %d fsyncs for %d shipped batches: per-event cadence leaked back in", syncs, batches)
	}

	// And the replicated state is exact.
	r.mu.Lock()
	d := lp.State().Diff(r.log.State())
	r.mu.Unlock()
	if d != "" {
		t.Fatalf("replicated state diverged: %s", d)
	}
}
