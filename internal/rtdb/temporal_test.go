package rtdb

import (
	"testing"

	"rtc/internal/relational"
	"rtc/internal/timeseq"
	"rtc/internal/vtime"
)

func schedSchema() relational.Schema {
	return relational.Schema{Name: "Schedules", Attrs: []relational.Attribute{"City", "Title"}}
}

func TestHistoricalInsertAndHoldsAt(t *testing.T) {
	h := NewHistoricalRelation(schedSchema())
	if err := h.Insert(relational.Tuple{"Hamilton", "Sorrowful Images"}, NewLifespan(Interval{10, 20})); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(relational.Tuple{"bad"}, Always()); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	u := relational.Tuple{"Hamilton", "Sorrowful Images"}
	for _, c := range []struct {
		t    timeseq.Time
		want bool
	}{{9, false}, {10, true}, {20, true}, {21, false}} {
		if got := h.HoldsAt(u, c.t); got != c.want {
			t.Errorf("R(u,%d) = %v, want %v", c.t, got, c.want)
		}
	}
	// Re-insert with a later lifespan: union.
	_ = h.Insert(u, NewLifespan(Interval{30, 35}))
	if !h.HoldsAt(u, 32) || h.HoldsAt(u, 25) {
		t.Error("lifespan union broken")
	}
	if len(h.Rows()) != 1 {
		t.Errorf("rows = %d, want 1 (same tuple)", len(h.Rows()))
	}
}

func TestSnapshotAt(t *testing.T) {
	h := NewHistoricalRelation(schedSchema())
	_ = h.Insert(relational.Tuple{"Mexico City", "Terre Sauvage"}, NewLifespan(Interval{0, 9}))
	_ = h.Insert(relational.Tuple{"Hamilton", "Sorrowful Images"}, NewLifespan(Interval{5, timeseq.Infinity}))
	s0 := h.SnapshotAt(0)
	if s0.Len() != 1 || !s0.Contains(relational.Tuple{"Mexico City", "Terre Sauvage"}) {
		t.Fatalf("I_0 = %v", s0)
	}
	s7 := h.SnapshotAt(7)
	if s7.Len() != 2 {
		t.Fatalf("I_7 = %v", s7)
	}
	s12 := h.SnapshotAt(12)
	if s12.Len() != 1 || !s12.Contains(relational.Tuple{"Hamilton", "Sorrowful Images"}) {
		t.Fatalf("I_12 = %v", s12)
	}
}

func TestTerminate(t *testing.T) {
	h := NewHistoricalRelation(schedSchema())
	u := relational.Tuple{"Hamilton", "Sorrowful Images"}
	_ = h.Insert(u, Always())
	h.Terminate(u, 15)
	if !h.HoldsAt(u, 14) || h.HoldsAt(u, 15) {
		t.Error("Terminate boundary wrong")
	}
	// Terminating at 0 removes the tuple entirely.
	h.Terminate(u, 0)
	if len(h.Rows()) != 0 {
		t.Errorf("rows = %v", h.Rows())
	}
}

func TestChangePoints(t *testing.T) {
	h := NewHistoricalRelation(schedSchema())
	_ = h.Insert(relational.Tuple{"A", "x"}, NewLifespan(Interval{2, 5}))
	_ = h.Insert(relational.Tuple{"B", "y"}, NewLifespan(Interval{4, timeseq.Infinity}))
	got := h.ChangePoints()
	want := []timeseq.Time{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("ChangePoints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChangePoints = %v, want %v", got, want)
		}
	}
}

func TestQueryAtAndDuring(t *testing.T) {
	db := NewHistoricalDatabase()
	h := NewHistoricalRelation(schedSchema())
	_ = h.Insert(relational.Tuple{"Mexico City", "Terre Sauvage"}, NewLifespan(Interval{0, 9}))
	_ = h.Insert(relational.Tuple{"Hamilton", "Sorrowful Images"}, NewLifespan(Interval{10, 19}))
	_ = h.Insert(relational.Tuple{"St. Catharines", "Painter of the Soil"}, NewLifespan(Interval{10, 14}))
	db.Add(h)

	q := relational.Project{
		Input: relational.From{Name: "Schedules", Schema: schedSchema()},
		Attrs: []relational.Attribute{"City"},
	}
	r, err := db.QueryAt(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("QueryAt(12) = %v", r)
	}

	hist, err := db.QueryDuring(q, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	// Mexico City is in the answer over [0,9], Hamilton over [10,19],
	// St. Catharines over [10,14].
	cases := []struct {
		city string
		t    timeseq.Time
		want bool
	}{
		{"Mexico City", 5, true},
		{"Mexico City", 10, false},
		{"Hamilton", 12, true},
		{"Hamilton", 5, false},
		{"St. Catharines", 14, true},
		{"St. Catharines", 15, false},
	}
	for _, c := range cases {
		if got := hist.HoldsAt(relational.Tuple{c.city}, c.t); got != c.want {
			t.Errorf("answer(%s, %d) = %v, want %v\nrows: %v", c.city, c.t, got, c.want, hist.Rows())
		}
	}
}

func TestFromLiveImage(t *testing.T) {
	s := vtime.New()
	db := New(s)
	db.AddImage(&ImageObject{Name: "temp", Period: 5, Read: tempRead})
	s.RunUntil(12)
	img, _ := db.Image("temp")
	h := FromLiveImage(img, s.Now())
	// Samples at 0, 5, 10 → lifespans [0,4], [5,9], [10,12].
	if !h.HoldsAt(relational.Tuple{"temp", tempRead(0)}, 3) {
		t.Error("sample 0 lifespan wrong")
	}
	if !h.HoldsAt(relational.Tuple{"temp", tempRead(10)}, 12) {
		t.Error("latest sample lifespan wrong")
	}
	snap := h.SnapshotAt(7)
	if snap.Len() != 1 {
		t.Fatalf("snapshot at 7 = %v", snap)
	}
}
