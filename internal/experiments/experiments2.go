package experiments

import (
	"fmt"

	"rtc/internal/adhoc"
	"rtc/internal/adhoc/runner"
	"rtc/internal/core"
	"rtc/internal/dacc"
	"rtc/internal/deadline"
	"rtc/internal/parallel"
	"rtc/internal/rtdb"
	"rtc/internal/stats"
	"rtc/internal/timeseq"
)

// E5Row is one point of the data-accumulating sweep.
type E5Row struct {
	Law        dacc.PolyLaw
	Terminated bool
	At         timeseq.Time
	Processed  uint64
	Predicted  timeseq.Time
	PredictOK  bool
}

// E5DataAccumulating sweeps the arrival-law parameters of equation (4).
// Expected shape: termination everywhere below the β=1, k·n^γ·c = rate
// knife edge; divergence at and beyond it; termination time growing with k
// and β; Simulate and the analytic fixed point agreeing.
func E5DataAccumulating() ([]E5Row, string) {
	n := uint64(64)
	wl := dacc.Workload{Rate: 2, WorkPerDatum: 1}
	var rows []E5Row
	t := stats.NewTable("k", "γ", "β", "terminated", "T_sim", "T_pred", "processed")
	for _, beta := range []float64{0.5, 0.8, 1.0, 1.3} {
		for _, k := range []float64{0.5, 1.0, 1.9, 2.5} {
			law := dacc.PolyLaw{K: k, Gamma: 0, Beta: beta}
			sim := dacc.Simulate(law, n, wl, 400000)
			pred, okP := dacc.Predict(law, n, wl, 400000)
			rows = append(rows, E5Row{Law: law, Terminated: sim.Terminated, At: sim.At, Processed: sim.Processed, Predicted: pred, PredictOK: okP})
			tsim, tpred := "-", "-"
			if sim.Terminated {
				tsim = uitoa(uint64(sim.At))
			}
			if okP {
				tpred = uitoa(uint64(pred))
			}
			t.Row(k, 0.0, beta, sim.Terminated, tsim, tpred, sim.Processed)
		}
	}
	return rows, t.String()
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// E6Row is one RTDB recognition run.
type E6Row struct {
	Name     string
	Verdict  core.Verdict
	FCount   uint64
	Expected bool // ground truth s ∈ q(B)
}

// E6RTDB runs the Definition 5.1 recognition pipeline: aperiodic members
// and non-members, deadline pressure, and a periodic query. Expected shape:
// the acceptor verdict always matches the ground truth, with deadline
// misses turning correct-but-late answers into rejects.
func E6RTDB() ([]E6Row, string) { return E6RTDBWith(DefaultE6Config()) }

// E6Config parameterizes the E6 run: the simulation horizon, the chronon
// cost of one query evaluation, and the image-object sampling period.
type E6Config struct {
	Horizon      timeseq.Time
	EvalCost     uint64
	SamplePeriod timeseq.Time
}

// DefaultE6Config reproduces the published E6 table. The "ground truth"
// column states the expected verdicts under this configuration; other knob
// settings explore deviations (e.g. a huge EvalCost flips the firm cases).
func DefaultE6Config() E6Config {
	return E6Config{Horizon: 300, EvalCost: 2, SamplePeriod: 5}
}

// E6RTDBWith runs E6 under an explicit configuration.
func E6RTDBWith(c E6Config) ([]E6Row, string) {
	sp := rtdb.Spec{
		Invariants: map[string]rtdb.Value{"limit": "22"},
		Derived: []*rtdb.DerivedObject{{
			Name: "status", Sources: []string{"temp", "limit"},
			Derive: statusDerive,
		}},
		Images: []*rtdb.ImageObject{{Name: "temp", Period: c.SamplePeriod, Read: tempRead}},
	}
	cat := rtdb.Catalog{
		"status_q": func(v *rtdb.View) []rtdb.Value {
			if s, ok := v.DeriveNow("status"); ok {
				return []rtdb.Value{s}
			}
			return nil
		},
	}
	reg := rtdb.DeriveRegistry{"status": statusDerive}

	var rows []E6Row
	add := func(name string, res core.Result, expected bool) {
		rows = append(rows, E6Row{Name: name, Verdict: res.Verdict, FCount: res.FCount, Expected: expected})
	}

	member := rtdb.QuerySpec{Query: "status_q", Issue: 7, Candidate: "ok"}
	add("aperiodic member", rtdb.RunAperiodic(sp, member, cat, reg, c.EvalCost, uint64(c.Horizon)), true)

	non := rtdb.QuerySpec{Query: "status_q", Issue: 7, Candidate: "high"}
	add("aperiodic non-member", rtdb.RunAperiodic(sp, non, cat, reg, c.EvalCost, uint64(c.Horizon)), false)

	// The firm deadline tracks the eval cost so "fast" stays inside it and
	// "slow" (cost + 7) overshoots it regardless of the configured cost.
	firmFast := member
	firmFast.Kind = deadline.Firm
	firmFast.Deadline = timeseq.Time(c.EvalCost) + 2
	firmFast.MinUseful = 1
	add("firm, fast eval", rtdb.RunAperiodic(sp, firmFast, cat, reg, c.EvalCost, uint64(c.Horizon)), true)
	add("firm, slow eval", rtdb.RunAperiodic(sp, firmFast, cat, reg, c.EvalCost+7, uint64(c.Horizon)), false)

	ps := rtdb.PeriodicSpec{
		Query: "status_q", Issue: 2, Period: 10,
		Candidates: func(i uint64) rtdb.Value {
			v := sp.ViewAt(2 + timeseq.Time(i)*10)
			s, ok := v.DeriveNow("status")
			if !ok {
				return "?"
			}
			return s
		},
	}
	res, _ := rtdb.RunPeriodic(sp, ps, cat, reg, 1, uint64(c.Horizon)*2/3)
	add("periodic all-served", res, true)

	t := stats.NewTable("case", "verdict", "f-count", "ground truth")
	for _, r := range rows {
		t.Row(r.Name, r.Verdict.String(), r.FCount, r.Expected)
	}
	return rows, t.String()
}

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	tv := atoi(src["temp"])
	lv := atoi(src["limit"])
	if tv > lv {
		return "high"
	}
	return "ok"
}

func tempRead(t timeseq.Time) rtdb.Value { return uitoa(20 + uint64(t)/10) }

func atoi(s string) int {
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		v = v*10 + int(c-'0')
	}
	return v
}

// E7Row is one protocol × pause-time cell of the routing comparison.
type E7Row struct {
	Protocol      string
	PauseTime     timeseq.Time
	DeliveryRatio float64
	Overhead      int
	Control       int
	ExcessHops    float64
	RoutesValid   bool
}

// E7Config parameterizes the routing comparison.
type E7Config struct {
	Nodes    int
	Arena    float64
	Range    float64
	Speed    float64
	Messages int
	Horizon  timeseq.Time
	Seed     int64
	// Workers sizes the scenario-runner pool (0 = all CPUs, 1 = serial).
	Workers int
	// BruteForce runs cells without the kinematics cache and spatial grid
	// (the reference path, for differential timing and testing).
	BruteForce bool
}

// DefaultE7 is a laptop-scale mirror of the Broch et al. setup.
func DefaultE7() E7Config {
	return E7Config{Nodes: 16, Arena: 150, Range: 50, Speed: 1.5, Messages: 12, Horizon: 400, Seed: 1}
}

// e7Protocols is the protocol column of the comparison matrix.
func e7Protocols() []struct {
	name string
	mk   func() adhoc.Protocol
} {
	return []struct {
		name string
		mk   func() adhoc.Protocol
	}{
		{"flooding", func() adhoc.Protocol { return &adhoc.Flooding{} }},
		{"dsdv-like", func() adhoc.Protocol { return &adhoc.DV{BeaconEvery: 5} }},
		{"dsr-like", func() adhoc.Protocol { return &adhoc.SR{} }},
		{"aodv-like", func() adhoc.Protocol { return &adhoc.AODV{} }},
		{"dream-like", func() adhoc.Protocol { return &adhoc.Geo{BeaconEvery: 5, BeaconTTL: 4} }},
	}
}

// E7Routing runs the four protocols across a pause-time sweep (high pause =
// low mobility) and reports the three measures of §5.2.4. The protocol ×
// pause matrix executes on the parallel scenario runner — every cell is an
// isolated Network, and rows come back in deterministic (pause, protocol)
// order regardless of which worker finished first. Expected shape (Broch
// et al.): flooding delivers the most at the highest overhead; the
// reactive protocol's control overhead drops as mobility falls (routes
// stay valid); every delivered route validates against R_{n,u}.
func E7Routing(cfg E7Config, pauses []timeseq.Time) ([]E7Row, string) {
	protos := e7Protocols()
	type spec struct {
		proto string
		pause timeseq.Time
	}
	var specs []spec
	var scenarios []runner.Scenario
	valid := make([]bool, 0, len(pauses)*len(protos))
	for _, pause := range pauses {
		for _, p := range protos {
			pause, mk, i := pause, p.mk, len(specs)
			specs = append(specs, spec{proto: p.name, pause: pause})
			valid = append(valid, false)
			scenarios = append(scenarios, runner.Scenario{
				Name:    fmt.Sprintf("%s/pause=%d", p.name, uint64(pause)),
				Horizon: cfg.Horizon,
				Build:   func() *adhoc.Network { return BuildE7Cell(cfg, pause, mk) },
				Post: func(net *adhoc.Network) error {
					valid[i] = e7RoutesValid(net, cfg.Messages)
					return nil
				},
			})
		}
	}
	results := runner.Run(scenarios, cfg.Workers)
	var rows []E7Row
	t := stats.NewTable("protocol", "pause", "delivery", "overhead", "control", "excess-hops", "routes-ok")
	for i, res := range results {
		m := res.Net.Metrics()
		row := E7Row{
			Protocol:      specs[i].proto,
			PauseTime:     specs[i].pause,
			DeliveryRatio: m.DeliveryRatio(),
			Overhead:      m.Overhead(),
			Control:       m.ControlPackets,
			ExcessHops:    m.PathOptimality(),
			RoutesValid:   valid[i],
		}
		rows = append(rows, row)
		t.Row(row.Protocol, uint64(row.PauseTime), row.DeliveryRatio, row.Overhead, row.Control, row.ExcessHops, row.RoutesValid)
	}
	return rows, t.String()
}

// BuildE7Cell constructs one isolated protocol × pause network with its
// workload injected: the Build function of one runner scenario. The trace
// records data events only — all the R_{n,u} validation of an E7 cell
// needs.
func BuildE7Cell(cfg E7Config, pause timeseq.Time, mk func() adhoc.Protocol) *adhoc.Network {
	nodes := make([]*adhoc.Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &adhoc.Node{
			ID:    i + 1,
			Mob:   adhoc.NewWaypoint(cfg.Seed*1000+int64(i), cfg.Arena, cfg.Arena, cfg.Speed, pause),
			Range: cfg.Range,
			Proto: mk(),
		}
	}
	net := adhoc.NewNetwork(nodes)
	net.TraceMode = adhoc.TraceData
	net.BruteForce = cfg.BruteForce
	rng := randSource(cfg.Seed * 7)
	at := timeseq.Time(40)
	for id := uint64(1); id <= uint64(cfg.Messages); id++ {
		src := int(rng()%uint64(cfg.Nodes)) + 1
		dst := int(rng()%uint64(cfg.Nodes)) + 1
		for dst == src {
			dst = int(rng()%uint64(cfg.Nodes)) + 1
		}
		net.Inject(adhoc.Message{ID: id, Src: src, Dst: dst, At: at, Payload: "b"})
		at += 12
	}
	return net
}

// e7RoutesValid checks every delivered message's route against R_{n,u}.
func e7RoutesValid(net *adhoc.Network, messages int) bool {
	for id := uint64(1); id <= uint64(messages); id++ {
		ck := net.Trace().CheckRoute(id, net)
		if ck.Delivered && !ck.OK {
			return false
		}
	}
	return true
}

// randSource is a tiny deterministic generator (splitmix64) so experiment
// workloads do not perturb the global rand stream.
func randSource(seed int64) func() uint64 {
	s := uint64(seed)
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// E8Row is one point of the rt-PROC staircase.
type E8Row struct {
	Batch      uint64
	ModelMinP  int
	ModelOK    bool
	SystemMinP int
	SystemOK   bool
}

// E8RTProc probes the rt-PROC(p) hierarchy: the minimum processor count to
// meet a deadline, in the analytic model and on the real goroutine system.
// Expected shape: both staircases are non-decreasing in the load, and for
// every load some p succeeds where p−1 fails.
func E8RTProc() ([]E8Row, string) {
	wl := dacc.Workload{Rate: 1, WorkPerDatum: 2}
	law := dacc.PolyLaw{K: 1, Gamma: 0, Beta: 0.5}
	const deadlineT = 450
	var rows []E8Row
	t := stats.NewTable("initial batch n", "model min p", "system min p")
	for _, n := range []uint64{100, 400, 1200} {
		mp, mok := dacc.MinProcessors(law, n, wl, 8, deadlineT)
		sp, sok := parallel.MinProcessorsParallel(law, n, wl, 8, deadlineT)
		rows = append(rows, E8Row{Batch: n, ModelMinP: mp, ModelOK: mok, SystemMinP: sp, SystemOK: sok})
		t.Row(n, mp, sp)
	}
	return rows, t.String()
}

// E7Agg is one protocol × pause cell aggregated over seeds.
type E7Agg struct {
	Protocol  string
	PauseTime timeseq.Time
	Delivery  stats.Summary
	Overhead  stats.Summary
}

// E7RoutingMulti repeats the routing comparison across seeds and reports
// mean ± stddev per cell — the form in which simulation studies like Broch
// et al. report their curves.
func E7RoutingMulti(cfg E7Config, pauses []timeseq.Time, seeds []int64) ([]E7Agg, string) {
	protoNames := []string{"flooding", "dsdv-like", "dsr-like", "aodv-like", "dream-like"}
	type cell struct {
		delivery []float64
		overhead []float64
	}
	cells := map[string]*cell{}
	key := func(p string, pause timeseq.Time) string { return fmt.Sprintf("%s|%d", p, pause) }
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		rows, _ := E7Routing(c, pauses)
		for _, r := range rows {
			k := key(r.Protocol, r.PauseTime)
			if cells[k] == nil {
				cells[k] = &cell{}
			}
			cells[k].delivery = append(cells[k].delivery, r.DeliveryRatio)
			cells[k].overhead = append(cells[k].overhead, float64(r.Overhead))
		}
	}
	var out []E7Agg
	t := stats.NewTable("protocol", "pause", "delivery μ", "±σ", "overhead μ", "±σ")
	for _, pause := range pauses {
		for _, p := range protoNames {
			c := cells[key(p, pause)]
			if c == nil {
				continue
			}
			agg := E7Agg{
				Protocol:  p,
				PauseTime: pause,
				Delivery:  stats.Summarize(c.delivery),
				Overhead:  stats.Summarize(c.overhead),
			}
			out = append(out, agg)
			t.Row(p, uint64(pause), agg.Delivery.Mean, agg.Delivery.Std, agg.Overhead.Mean, agg.Overhead.Std)
		}
	}
	return out, t.String()
}
