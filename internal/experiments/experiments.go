// Package experiments wires the substrate packages into the reproduction
// experiments indexed in DESIGN.md (E1–E10). Each experiment returns a
// rendered table plus structured results so that the CLIs, the root
// benchmarks, and EXPERIMENTS.md all draw from the same code paths.
//
// The paper (IPPS 2001) has no numeric evaluation section; the experiments
// regenerate its figures, worked constructions and formal claims, and — per
// the substitution rule — the shapes of the external evaluations it builds
// on (the Broch et al. routing comparison; the d-algorithm termination
// analyses).
package experiments

import (
	"fmt"
	"math/rand"

	"rtc/internal/automata"
	"rtc/internal/deadline"
	"rtc/internal/omega"
	"rtc/internal/relational"
	"rtc/internal/stats"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// E1Result summarizes the Theorem 3.1 / Corollary 3.2 refutations.
type E1Result struct {
	DFACandidates   int
	BuchiCandidates int
	AllRefuted      bool
	Table           string
}

// E1NonRegular runs the executable pumping arguments: every candidate DFA
// for L and every candidate Büchi automaton for L_ω is refuted with a
// concrete disagreeing word.
func E1NonRegular(randomTrials int, seed int64) E1Result {
	t := stats.NewTable("candidate", "kind", "witness", "verdict")
	out := E1Result{AllRefuted: true}

	type dfaCase struct {
		name string
		d    *automata.DFA
	}
	dfas := []dfaCase{
		{"shape a+b+c+d+", automata.CandidateOverDFA()},
		{"bounded k=2", automata.CandidateBoundedDFA(2)},
		{"bounded k=4", automata.CandidateBoundedDFA(4)},
		{"bounded k=4 minimized", automata.CandidateBoundedDFA(4).Minimize()},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < randomTrials; i++ {
		n := 1 + rng.Intn(6)
		d := automata.NewDFA(automata.LAlphabet, n, rng.Intn(n))
		for s := 0; s < n; s++ {
			for _, a := range automata.LAlphabet {
				if rng.Intn(4) > 0 {
					d.SetTrans(s, a, rng.Intn(n))
				}
			}
			if rng.Intn(3) == 0 {
				d.SetAccept(s)
			}
		}
		dfas = append(dfas, dfaCase{fmt.Sprintf("random #%d (%d states)", i, n), d})
	}
	for _, c := range dfas {
		ce := automata.RefuteL(c.d)
		genuine := ce.DFAAccepts != ce.InLanguage
		out.DFACandidates++
		if !genuine {
			out.AllRefuted = false
		}
		t.Row(c.name, "DFA vs L", clip(automata.String(ce.Word), 32), verdict(genuine, ce.DFAAccepts))
	}

	type buchiCase struct {
		name string
		b    *omega.Buchi
	}
	buchis := []buchiCase{
		{"shape (a+b+c+d+$)^ω", omega.CandidateShapeBuchi()},
		{"bounded k=2", omega.CandidateBoundedBuchi(2)},
		{"bounded k=3", omega.CandidateBoundedBuchi(3)},
	}
	for _, c := range buchis {
		ce := omega.RefuteLOmega(c.b)
		genuine := ce.BuchiAccepts != ce.InLanguage
		out.BuchiCandidates++
		if !genuine {
			out.AllRefuted = false
		}
		t.Row(c.name, "Büchi vs L_ω", clip(ce.Word.String(), 32), verdict(genuine, ce.BuchiAccepts))
	}
	out.Table = t.String()
	return out
}

func verdict(genuine, accepts bool) string {
	if !genuine {
		return "NOT REFUTED (bug)"
	}
	if accepts {
		return "refuted: false accept"
	}
	return "refuted: false reject"
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// E3Result is the Figure 1 / Figure 2 reproduction.
type E3Result struct {
	Match bool
	Table string
}

// E3NGC evaluates the November query on the Figure 1 database and compares
// with Figure 2.
func E3NGC() E3Result {
	db := relational.NGCDatabase()
	got, err := relational.NovemberQuery().Eval(db)
	if err != nil {
		return E3Result{Table: "error: " + err.Error()}
	}
	want := relational.Figure2Result()
	t := stats.NewTable("Artist", "City", "in Figure 2?")
	for _, tup := range got.Tuples() {
		t.Row(tup[0], tup[1], want.Contains(tup))
	}
	return E3Result{Match: got.Equal(want), Table: t.String()}
}

// E4Row is one point of the deadline sweep.
type E4Row struct {
	Kind     deadline.Kind
	Deadline timeseq.Time
	Accepted bool
	Proven   bool
}

// e4Solver is a sorting P_w with cost 3 chronons per symbol.
func e4Solver() deadline.Solver {
	return &deadline.FuncSolver{
		Cost: func(n int) uint64 { return 3 * uint64(n) },
		Solve: func(in []word.Symbol) []word.Symbol {
			out := append([]word.Symbol{}, in...)
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		},
	}
}

// E4Deadline sweeps the deadline for a fixed workload (6 symbols, 18
// chronons of work) under firm and soft regimes. Expected shape: a single
// reject→accept flip for firm at t_d > 17; the soft flip comes earlier
// because late-but-still-useful answers are accepted.
func E4Deadline() ([]E4Row, string) {
	var rows []E4Row
	t := stats.NewTable("kind", "t_d", "verdict")
	for _, kind := range []deadline.Kind{deadline.Firm, deadline.Soft} {
		for td := timeseq.Time(4); td <= 28; td += 4 {
			inst := deadline.Instance{
				Input:     automata.Syms("fedcba"),
				Proposed:  automata.Syms("abcdef"),
				Kind:      kind,
				Deadline:  td,
				MinUseful: 3,
				U:         deadline.Hyperbolic(12, td),
			}
			res := deadline.Accepts(inst, e4Solver(), 400)
			rows = append(rows, E4Row{
				Kind: kind, Deadline: td,
				Accepted: res.Verdict.Accepted(), Proven: res.Verdict.Proven(),
			})
			t.Row(kind.String(), uint64(td), res.Verdict.String())
		}
	}
	return rows, t.String()
}
