package experiments

import (
	"strings"
	"testing"

	"rtc/internal/core"
	"rtc/internal/deadline"
	"rtc/internal/timeseq"
)

func TestE1AllRefuted(t *testing.T) {
	res := E1NonRegular(10, 3)
	if !res.AllRefuted {
		t.Fatalf("some candidate escaped refutation:\n%s", res.Table)
	}
	if res.DFACandidates < 10 || res.BuchiCandidates < 3 {
		t.Errorf("candidate counts: %d DFA, %d Büchi", res.DFACandidates, res.BuchiCandidates)
	}
	if !strings.Contains(res.Table, "refuted") {
		t.Error("table missing verdicts")
	}
}

func TestE3Matches(t *testing.T) {
	res := E3NGC()
	if !res.Match {
		t.Fatalf("Figure 2 mismatch:\n%s", res.Table)
	}
	for _, artist := range []string{"Schaefer", "Aelbrecht", "Dieric"} {
		if !strings.Contains(res.Table, artist) {
			t.Errorf("table missing %s", artist)
		}
	}
}

func TestE4Shapes(t *testing.T) {
	rows, table := E4Deadline()
	if table == "" {
		t.Fatal("empty table")
	}
	// Per kind: acceptance monotone non-decreasing in t_d with exactly one
	// flip, and every verdict proven.
	perKind := map[deadline.Kind][]E4Row{}
	for _, r := range rows {
		if !r.Proven {
			t.Errorf("unproven verdict at %v t_d=%d", r.Kind, r.Deadline)
		}
		perKind[r.Kind] = append(perKind[r.Kind], r)
	}
	flipAt := map[deadline.Kind]timeseq.Time{}
	for kind, rs := range perKind {
		flips := 0
		for i := 1; i < len(rs); i++ {
			if rs[i].Accepted != rs[i-1].Accepted {
				flips++
				flipAt[kind] = rs[i].Deadline
			}
		}
		if flips != 1 || rs[0].Accepted || !rs[len(rs)-1].Accepted {
			t.Errorf("%v sweep shape wrong: %+v", kind, rs)
		}
	}
	// Soft flips no later than firm (late-but-useful answers count).
	if flipAt[deadline.Soft] > flipAt[deadline.Firm] {
		t.Errorf("soft flip at %d after firm flip at %d", flipAt[deadline.Soft], flipAt[deadline.Firm])
	}
}

func TestE5Shapes(t *testing.T) {
	rows, table := E5DataAccumulating()
	if table == "" {
		t.Fatal("empty table")
	}
	// β<1 always terminates; β=1 splits at k·c = rate (= 2); β>1 with a
	// slow start diverges for the larger k.
	var seenDiverge, seenTerminate bool
	for _, r := range rows {
		switch {
		case r.Law.Beta < 1:
			if !r.Terminated {
				t.Errorf("β=%g k=%g should terminate", r.Law.Beta, r.Law.K)
			}
		case r.Law.Beta == 1:
			want := r.Law.K < 2
			if r.Terminated != want {
				t.Errorf("β=1 k=%g terminated=%v, want %v", r.Law.K, r.Terminated, want)
			}
		}
		if r.Terminated {
			seenTerminate = true
			// Near the β=1 knife edge the one-tick work offset between
			// Simulate and Predict is amplified by 1/(rate−k·c), so the
			// agreement bound is relative.
			if r.PredictOK && float64(r.Predicted) > 1.1*float64(r.At)+5 {
				t.Errorf("k=%g β=%g: prediction %d far above simulation %d",
					r.Law.K, r.Law.Beta, r.Predicted, r.At)
			}
		} else {
			seenDiverge = true
		}
	}
	if !seenDiverge || !seenTerminate {
		t.Error("sweep did not cover both regimes")
	}
}

func TestE6VerdictsMatchGroundTruth(t *testing.T) {
	rows, table := E6RTDB()
	if table == "" {
		t.Fatal("empty table")
	}
	for _, r := range rows {
		if got := r.Verdict.Accepted(); got != r.Expected {
			t.Errorf("%s: verdict %v, ground truth %v", r.Name, r.Verdict, r.Expected)
		}
	}
	// The periodic case must have produced at least one f per served query.
	last := rows[len(rows)-1]
	if last.Name != "periodic all-served" || last.FCount < 3 {
		t.Errorf("periodic row = %+v", last)
	}
	if rows[0].Verdict != core.AcceptProven {
		t.Errorf("member not proven: %+v", rows[0])
	}
}

func TestE7Shapes(t *testing.T) {
	cfg := DefaultE7()
	cfg.Messages = 8
	cfg.Horizon = 300
	rows, table := E7Routing(cfg, []timeseq.Time{0, 120})
	if table == "" {
		t.Fatal("empty table")
	}
	byProto := map[string][]E7Row{}
	for _, r := range rows {
		if !r.RoutesValid {
			t.Errorf("%s@pause=%d: delivered route failed §5.2.4 validation", r.Protocol, r.PauseTime)
		}
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	for pauseIdx := 0; pauseIdx < 2; pauseIdx++ {
		flood := byProto["flooding"][pauseIdx]
		for name, rs := range byProto {
			if name == "flooding" {
				continue
			}
			// Flooding delivers at least as much as any other protocol
			// (allowing one message of slack for timing edges).
			if rs[pauseIdx].DeliveryRatio > flood.DeliveryRatio+1.0/8 {
				t.Errorf("pause %d: %s delivery %.2f exceeds flooding %.2f by more than slack",
					rs[pauseIdx].PauseTime, name, rs[pauseIdx].DeliveryRatio, flood.DeliveryRatio)
			}
		}
	}
	// The proactive protocol pays control overhead even with no mobility;
	// flooding pays none.
	for _, r := range byProto["flooding"] {
		if r.Control != 0 {
			t.Errorf("flooding control packets = %d", r.Control)
		}
	}
	for _, r := range byProto["dsdv-like"] {
		if r.Control == 0 {
			t.Error("dsdv-like paid no control packets")
		}
	}
}

func TestE8Staircase(t *testing.T) {
	rows, table := E8RTProc()
	if table == "" {
		t.Fatal("empty table")
	}
	prevM, prevS := 0, 0
	for _, r := range rows {
		if !r.ModelOK || !r.SystemOK {
			t.Fatalf("n=%d: model ok=%v system ok=%v", r.Batch, r.ModelOK, r.SystemOK)
		}
		if r.ModelMinP < prevM || r.SystemMinP < prevS {
			t.Errorf("staircase decreased at n=%d: %+v", r.Batch, r)
		}
		prevM, prevS = r.ModelMinP, r.SystemMinP
	}
	if prevM < 2 || prevS < 2 {
		t.Errorf("staircases too flat: model %d, system %d", prevM, prevS)
	}
}

func TestE7Multi(t *testing.T) {
	cfg := DefaultE7()
	cfg.Messages = 6
	cfg.Horizon = 250
	aggs, table := E7RoutingMulti(cfg, []timeseq.Time{0}, []int64{1, 2, 3})
	if table == "" || len(aggs) != 5 {
		t.Fatalf("aggs = %d", len(aggs))
	}
	for _, a := range aggs {
		if a.Delivery.N != 3 {
			t.Errorf("%s: %d samples", a.Protocol, a.Delivery.N)
		}
		if a.Delivery.Mean < 0 || a.Delivery.Mean > 1 {
			t.Errorf("%s: mean delivery %g", a.Protocol, a.Delivery.Mean)
		}
	}
}
