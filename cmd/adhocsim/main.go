// Command adhocsim regenerates experiment E7: the routing comparison of
// §5.2 in the style of Broch et al. — four protocols across a pause-time
// (mobility) sweep, reporting delivery ratio, routing overhead and path
// optimality, with every delivered route validated against the routing
// language R_{n,u}.
package main

import (
	"flag"
	"fmt"
	"strings"

	"rtc/internal/adhoc"
	"rtc/internal/experiments"
	"rtc/internal/timeseq"
)

func main() {
	nodes := flag.Int("nodes", 16, "number of mobile nodes")
	arena := flag.Float64("arena", 150, "arena side length")
	rng := flag.Float64("range", 50, "radio range")
	speed := flag.Float64("speed", 1.5, "node speed (distance per chronon)")
	msgs := flag.Int("messages", 12, "workload messages")
	horizon := flag.Uint64("horizon", 400, "simulation length (chronons)")
	seed := flag.Int64("seed", 1, "random seed")
	pauses := flag.String("pauses", "0,60,240", "comma-separated pause times (high pause = low mobility)")
	fail := flag.String("fail", "", "crash-stop failures as id@t pairs, e.g. '3@100,7@150' (single-run demo)")
	seeds := flag.String("seeds", "", "comma-separated seeds: aggregate mean ± stddev across runs")
	flag.Parse()

	if *fail != "" {
		failureDemo(*fail, *nodes, *arena, *rng, *speed, *msgs, timeseq.Time(*horizon), *seed)
		return
	}

	cfg := experiments.E7Config{
		Nodes: *nodes, Arena: *arena, Range: *rng, Speed: *speed,
		Messages: *msgs, Horizon: timeseq.Time(*horizon), Seed: *seed,
	}
	var ps []timeseq.Time
	for _, s := range strings.Split(*pauses, ",") {
		var v uint64
		fmt.Sscanf(strings.TrimSpace(s), "%d", &v)
		ps = append(ps, timeseq.Time(v))
	}
	fmt.Printf("E7 — routing comparison (%d nodes, arena %.0f², range %.0f, %d messages)\n\n",
		cfg.Nodes, cfg.Arena, cfg.Range, cfg.Messages)
	if *seeds != "" {
		var ss []int64
		for _, tok := range strings.Split(*seeds, ",") {
			var v int64
			fmt.Sscanf(strings.TrimSpace(tok), "%d", &v)
			ss = append(ss, v)
		}
		_, table := experiments.E7RoutingMulti(cfg, ps, ss)
		fmt.Print(table)
		return
	}
	_, table := experiments.E7Routing(cfg, ps)
	fmt.Print(table)
}

// failureDemo runs a single flooding scenario with injected crash-stop
// failures and reports the R′-style delivery ratios.
func failureDemo(spec string, n int, arena, rng, speed float64, msgs int, horizon timeseq.Time, seed int64) {
	nodes := make([]*adhoc.Node, n)
	for i := range nodes {
		nodes[i] = &adhoc.Node{
			ID:    i + 1,
			Mob:   adhoc.NewWaypoint(seed*1000+int64(i), arena, arena, speed, 60),
			Range: rng,
			Proto: &adhoc.Flooding{},
		}
	}
	net := adhoc.NewNetwork(nodes)
	for _, pair := range strings.Split(spec, ",") {
		var id int
		var at uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(pair), "%d@%d", &id, &at); err == nil {
			net.FailAt(id, timeseq.Time(at))
			fmt.Printf("node %d fails at t=%d\n", id, at)
		}
	}
	for id := uint64(1); id <= uint64(msgs); id++ {
		src := int(id)%n + 1
		dst := int(id*7)%n + 1
		if dst == src {
			dst = dst%n + 1
		}
		net.Inject(adhoc.Message{ID: id, Src: src, Dst: dst, At: timeseq.Time(20 + 15*id), Payload: "b"})
	}
	net.Run(horizon)
	fmt.Println("metrics:", net.Metrics())
	for _, T := range []timeseq.Time{5, 20, horizon} {
		fmt.Printf("delivery ratio within T=%-4d (R' semantics): %.2f\n", uint64(T), net.Trace().DeliveryRatioWithin(T))
	}
}
