// Command adhocsim regenerates experiment E7: the routing comparison of
// §5.2 in the style of Broch et al. — four protocols across a pause-time
// (mobility) sweep, reporting delivery ratio, routing overhead and path
// optimality, with every delivered route validated against the routing
// language R_{n,u}.
package main

import (
	"flag"
	"fmt"
	"strings"

	"rtc/internal/adhoc"
	"rtc/internal/adhoc/runner"
	"rtc/internal/experiments"
	"rtc/internal/timeseq"
)

func main() {
	nodes := flag.Int("nodes", 16, "number of mobile nodes")
	arena := flag.Float64("arena", 150, "arena side length")
	rng := flag.Float64("range", 50, "radio range")
	speed := flag.Float64("speed", 1.5, "node speed (distance per chronon)")
	msgs := flag.Int("messages", 12, "workload messages")
	horizon := flag.Uint64("horizon", 400, "simulation length (chronons)")
	seed := flag.Int64("seed", 1, "random seed")
	pauses := flag.String("pauses", "0,60,240", "comma-separated pause times (high pause = low mobility)")
	fail := flag.String("fail", "", "crash-stop failures as id@t pairs, e.g. '3@100,7@150' (single-run demo)")
	seeds := flag.String("seeds", "", "comma-separated seeds: aggregate mean ± stddev across runs")
	workers := flag.Int("workers", 0, "scenario-runner workers (0 = all CPUs, 1 = serial)")
	brute := flag.Bool("brute", false, "disable the kinematics cache and spatial grid (reference path)")
	matrix := flag.Bool("matrix", false, "run one pause time per protocol on the parallel runner and print the leaderboard")
	flag.Parse()

	if *fail != "" {
		failureDemo(*fail, *nodes, *arena, *rng, *speed, *msgs, timeseq.Time(*horizon), *seed)
		return
	}

	cfg := experiments.E7Config{
		Nodes: *nodes, Arena: *arena, Range: *rng, Speed: *speed,
		Messages: *msgs, Horizon: timeseq.Time(*horizon), Seed: *seed,
		Workers: *workers, BruteForce: *brute,
	}

	if *matrix {
		matrixDemo(cfg, firstPause(*pauses))
		return
	}
	var ps []timeseq.Time
	for _, s := range strings.Split(*pauses, ",") {
		var v uint64
		fmt.Sscanf(strings.TrimSpace(s), "%d", &v)
		ps = append(ps, timeseq.Time(v))
	}
	fmt.Printf("E7 — routing comparison (%d nodes, arena %.0f², range %.0f, %d messages)\n\n",
		cfg.Nodes, cfg.Arena, cfg.Range, cfg.Messages)
	if *seeds != "" {
		var ss []int64
		for _, tok := range strings.Split(*seeds, ",") {
			var v int64
			fmt.Sscanf(strings.TrimSpace(tok), "%d", &v)
			ss = append(ss, v)
		}
		_, table := experiments.E7RoutingMulti(cfg, ps, ss)
		fmt.Print(table)
		return
	}
	_, table := experiments.E7Routing(cfg, ps)
	fmt.Print(table)
}

// firstPause parses the first entry of the -pauses list.
func firstPause(spec string) timeseq.Time {
	var v uint64
	fmt.Sscanf(strings.TrimSpace(strings.Split(spec, ",")[0]), "%d", &v)
	return timeseq.Time(v)
}

// matrixDemo runs every protocol on one scenario concurrently via the
// runner and prints the per-measure leaderboard (§5.2.4: "more than one
// measure of performance may be considered").
func matrixDemo(cfg experiments.E7Config, pause timeseq.Time) {
	protos := []struct {
		name string
		mk   func() adhoc.Protocol
	}{
		{"flooding", func() adhoc.Protocol { return &adhoc.Flooding{} }},
		{"dsdv-like", func() adhoc.Protocol { return &adhoc.DV{BeaconEvery: 5} }},
		{"dsr-like", func() adhoc.Protocol { return &adhoc.SR{} }},
		{"aodv-like", func() adhoc.Protocol { return &adhoc.AODV{} }},
		{"dream-like", func() adhoc.Protocol { return &adhoc.Geo{BeaconEvery: 5, BeaconTTL: 4} }},
	}
	scenarios := make([]runner.Scenario, len(protos))
	for i, p := range protos {
		mk := p.mk
		scenarios[i] = runner.Scenario{
			Name:    p.name,
			Horizon: cfg.Horizon,
			Build:   func() *adhoc.Network { return experiments.BuildE7Cell(cfg, pause, mk) },
		}
	}
	results := runner.Run(scenarios, cfg.Workers)
	board := runner.Leaderboard(results)
	fmt.Printf("matrix — %d protocols, pause=%d, %d workers requested\n\n", len(protos), uint64(pause), cfg.Workers)
	fmt.Print(board)
	fmt.Printf("\nbest delivery: %s\ncheapest overhead: %s\n", board.BestDelivery(), board.CheapestOverhead())
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("FAILED %s: %v\n", r.Name, r.Err)
		}
	}
}

// failureDemo runs a single flooding scenario with injected crash-stop
// failures and reports the R′-style delivery ratios.
func failureDemo(spec string, n int, arena, rng, speed float64, msgs int, horizon timeseq.Time, seed int64) {
	nodes := make([]*adhoc.Node, n)
	for i := range nodes {
		nodes[i] = &adhoc.Node{
			ID:    i + 1,
			Mob:   adhoc.NewWaypoint(seed*1000+int64(i), arena, arena, speed, 60),
			Range: rng,
			Proto: &adhoc.Flooding{},
		}
	}
	net := adhoc.NewNetwork(nodes)
	for _, pair := range strings.Split(spec, ",") {
		var id int
		var at uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(pair), "%d@%d", &id, &at); err == nil {
			net.FailAt(id, timeseq.Time(at))
			fmt.Printf("node %d fails at t=%d\n", id, at)
		}
	}
	for id := uint64(1); id <= uint64(msgs); id++ {
		src := int(id)%n + 1
		dst := int(id*7)%n + 1
		if dst == src {
			dst = dst%n + 1
		}
		net.Inject(adhoc.Message{ID: id, Src: src, Dst: dst, At: timeseq.Time(20 + 15*id), Payload: "b"})
	}
	net.Run(horizon)
	fmt.Println("metrics:", net.Metrics())
	for _, T := range []timeseq.Time{5, 20, horizon} {
		fmt.Printf("delivery ratio within T=%-4d (R' semantics): %.2f\n", uint64(T), net.Trace().DeliveryRatioWithin(T))
	}
}
