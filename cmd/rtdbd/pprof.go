package main

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
)

// startPprof serves the standard net/http/pprof endpoints in the
// background. Profiling a live server is how the hot-path allocation
// budget is policed:
//
//	rtdbd -listen 127.0.0.1:7677 -pprof 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// (use /debug/pprof/allocs for the allocation profile). A failure to bind
// is reported and otherwise ignored — profiling must never take the
// server down.
func startPprof(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "rtdbd: pprof:", err)
		}
	}()
}
