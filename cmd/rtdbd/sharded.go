// Sharded rtdbd: -shards N composes N complete single-shard stacks — one
// WAL directory (dir/shard-NN), one apply loop, one rtwire listener each —
// behind the deterministic rtwire.ShardOf router. Clients compute placement
// with the same hash, so the synthetic driver here routes exactly the way a
// remote rtdbload -shard-addrs run does.
package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
	"rtc/internal/timeseq"
)

// queryHome maps the demo catalog's queries to the object whose shard owns
// their read set: both status_q (derives status from temp+limit) and temp_q
// read temp, so both live on temp's shard.
func queryHome() map[string]string {
	return map[string]string{"status_q": "temp", "temp_q": "temp"}
}

// sensorImages widens the demo keyspace for a sharded run: the unsharded
// demo's two images hash to one shard, so the sharded deployment adds a
// bank of sensors that rtwire.ShardOf spreads across every lane. rtdbload
// -shard-addrs drives the same names.
const sensorBank = 16

func sensorName(i int) string { return fmt.Sprintf("sensor-%02d", i%sensorBank) }

func runSharded(dir, listen string, shards, sessions, ops int, segSize int64, snapshot uint64,
	fsync bool, fsyncWin time.Duration, evalCost, deadln uint64, queue int) error {
	cfg := serverConfig(sessions, queue, evalCost)
	for i := 0; i < sensorBank; i++ {
		cfg.Spec.Images = append(cfg.Spec.Images, &rtdb.ImageObject{Name: sensorName(i), Period: 5})
	}

	var logs []*wal.Log
	if dir != "" {
		logs = make([]*wal.Log, shards)
		for i := range logs {
			l, err := wal.Open(wal.Options{
				Dir: server.ShardDir(dir, i, shards), SegmentSize: segSize,
				SnapshotEvery: snapshot, Sync: fsync, GroupWindow: fsyncWin,
			})
			if err != nil {
				return err
			}
			defer l.Close()
			logs[i] = l
			if st := l.State(); st.Events > 0 {
				fmt.Printf("shard %d: recovered %d events through chronon %d\n", i, st.Events, st.LastAt)
			}
		}
	}

	ss, err := server.NewSharded(server.ShardedConfig{
		Base: cfg, Shards: shards, Logs: logs, QueryHome: queryHome(),
	})
	if err != nil {
		return err
	}
	if err := ss.RegisterPeriodic(server.PeriodicQuery{
		Name: "status-watch", Query: "status_q",
		Issue: ss.Now(), Period: 11,
		Kind: deadline.Firm, Deadline: timeseq.Time(evalCost) + 3, MinUseful: 1,
	}); err != nil {
		return err
	}
	ss.Start()

	// One listener per shard: with -listen host:port, shard i serves on
	// port+i; synthetic mode uses ephemeral loopback ports.
	set := netserve.NewShardSet(ss, netserve.Options{HeartbeatInterval: time.Second})
	addrs := make([]string, shards)
	for i, ns := range set {
		a := "127.0.0.1:0"
		if listen != "" {
			host, port, err := net.SplitHostPort(listen)
			if err != nil {
				ss.Stop()
				return fmt.Errorf("-listen %q: %w", listen, err)
			}
			p, err := strconv.Atoi(port)
			if err != nil {
				ss.Stop()
				return fmt.Errorf("-listen %q: port must be numeric with -shards: %w", listen, err)
			}
			a = net.JoinHostPort(host, strconv.Itoa(p+i))
		}
		bound, err := ns.Listen(a)
		if err != nil {
			ss.Stop()
			return err
		}
		addrs[i] = bound.String()
		fmt.Printf("shard %d/%d serving rtwire on %s\n", i, shards, addrs[i])
	}
	closeAll := func() {
		for _, ns := range set {
			_ = ns.Close()
		}
	}

	if listen != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\ndraining...")
	} else if err := syntheticSharded(addrs, cfg.Sessions, ops, deadln); err != nil {
		closeAll()
		ss.Stop()
		return err
	}

	closeAll()
	ss.Stop()
	return reportSharded(ss, logs)
}

// syntheticSharded drives the same op mix as the unsharded synthetic run,
// but through client-side placement: every connection holds one client per
// shard listener and routes each sample to rtwire.ShardOf's owner, each
// query to its home shard — the placement contract exercised end to end.
func syntheticSharded(addrs []string, conns, ops int, deadln uint64) error {
	home := queryHome()
	errs := make(chan error, conns)
	done := make(chan struct{}, conns)
	perShard := make([]uint64, len(addrs))
	start := time.Now()
	for i := 0; i < conns; i++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			cs := make([]*client.Client, len(addrs))
			for s, addr := range addrs {
				c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("syn-%d-%d", id, s)})
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				cs[s] = c
			}
			route := func(object string) *client.Client { return cs[cs[0].ShardFor(object)] }
			for op := 0; op < ops; op++ {
				switch op % 5 {
				case 0:
					_ = route("temp").InjectSample("temp", strconv.Itoa(18+(id*7+op)%12))
				case 1:
					sensor := sensorName(id + op)
					_ = route(sensor).InjectSample(sensor, strconv.Itoa(op%100))
				case 2:
					_ = route("pressure").InjectSample("pressure", strconv.Itoa(99+(id+op)%4))
				case 3:
					_, _ = route(home["status_q"]).Query(client.Query{
						Query: "status_q", Candidate: "ok",
						Kind: deadline.Firm, Deadline: timeseq.Time(deadln), MinUseful: 1,
					})
				case 4:
					_, _ = route(home["temp_q"]).Query(client.Query{Query: "temp_q"})
				}
			}
			for _, c := range cs {
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	for i := 0; i < conns; i++ {
		<-done
	}
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	// Per-shard throughput, from each listener's own books: the shard label
	// rows identify the lane, the unchanged base names carry the counters.
	fmt.Println()
	var total uint64
	for s, addr := range addrs {
		c, err := client.Dial(addr, client.Options{Name: "syn-report"})
		if err != nil {
			return err
		}
		m, err := c.Metrics()
		c.Close()
		if err != nil {
			return err
		}
		mm := m.Map()
		perShard[s] = mm["samples_applied"]
		total += perShard[s]
		fmt.Printf("shard %d: %d samples applied (%.0f/s), %d queries, wal_seq %d\n",
			s, perShard[s], float64(perShard[s])/elapsed.Seconds(), mm["queries_in"], mm["wal_seq"])
	}
	fmt.Printf("all shards: %d samples in %v (%.0f/s aggregate)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	return nil
}

// reportSharded prints the aggregated metrics table and checks the
// cross-shard conservation law: each shard's block satisfies it
// independently, so the sum must too.
func reportSharded(ss *server.ShardedServer, logs []*wal.Log) error {
	m := ss.MetricsSnapshot()
	fmt.Println()
	fmt.Print(m.Table())
	if got, want := m.QueriesIn, m.QueriesAccounted(); got != want {
		return fmt.Errorf("cross-shard conservation violated: %d queries in, %d accounted", got, want)
	}
	fmt.Printf("\ncross-shard conservation: %d queries in == %d rejected + %d hit + %d missed + %d no-deadline ✓\n",
		m.QueriesIn, m.QueriesRejected, m.DeadlineHit, m.DeadlineMiss, m.NoDeadline)
	for i, l := range logs {
		fmt.Printf("shard %d WAL: seq %d, %d events\n", i, l.Seq(), l.State().Events)
	}
	return nil
}
