// Command rtdbd runs the durable, concurrent real-time database server: it
// loads (or crash-recovers) a write-ahead log directory, serves a synthetic
// multi-client workload — N sessions injecting timed sensor samples and
// issuing firm/soft-deadline queries against one §5.1 database, with
// periodic standing queries and temporal as-of reads on the side — and
// prints the metrics table.
//
// Run it twice against the same -dir to watch recovery replay the log:
//
//	go run ./cmd/rtdbd -dir /tmp/rtdbd -sessions 8 -ops 200
//	go run ./cmd/rtdbd -dir /tmp/rtdbd -sessions 8 -ops 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"

	"rtc/internal/deadline"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/server"
	"rtc/internal/timeseq"
)

func main() {
	var (
		dir      = flag.String("dir", "", "WAL directory (empty: run without durability)")
		sessions = flag.Int("sessions", 8, "concurrent client sessions")
		ops      = flag.Int("ops", 200, "operations per session")
		segSize  = flag.Int64("segment-size", 1<<20, "WAL segment rotation size (bytes)")
		snapshot = flag.Uint64("snapshot-every", 2000, "WAL catalog snapshot period (events, 0: never)")
		fsync    = flag.Bool("fsync", false, "fsync the WAL after every append")
		evalCost = flag.Uint64("eval-cost", 2, "chronons one query evaluation costs")
		deadln   = flag.Uint64("deadline", 40, "relative firm deadline for client queries (chronons)")
		queue    = flag.Int("queue-depth", 64, "per-session queue depth")
	)
	flag.Parse()
	if err := run(*dir, *sessions, *ops, *segSize, *snapshot, *fsync, *evalCost, *deadln, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "rtdbd:", err)
		os.Exit(1)
	}
}

func run(dir string, sessions, ops int, segSize int64, snapshot uint64, fsync bool,
	evalCost, deadln uint64, queue int) error {
	cfg := server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "25"},
			Images: []*rtdb.ImageObject{
				{Name: "temp", Period: 5},
				{Name: "pressure", Period: 7},
			},
			Derived: []*rtdb.DerivedObject{
				{Name: "status", Sources: []string{"temp", "limit"}, Derive: statusOf},
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusOf},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
			"temp_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest("temp"); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			},
		},
		Rules: []rtdb.Rule{
			{
				Name: "overheat", On: "sample:temp", Mode: rtdb.Immediate,
				If: func(db *rtdb.DB, e rtdb.Event) bool {
					t, _ := strconv.Atoi(e.Attr["value"])
					return t > 25
				},
				Then: func(db *rtdb.DB, e rtdb.Event) {
					db.Raise(rtdb.Event{Kind: "alarm", At: e.At, Attr: e.Attr})
				},
			},
			{
				Name: "log-alarm", On: "alarm", Mode: rtdb.Immediate,
				Then: func(db *rtdb.DB, e rtdb.Event) {},
			},
		},
		Sessions:   sessions,
		QueueDepth: queue,
		EvalCost:   evalCost,
	}

	if dir != "" {
		l, err := wal.Open(wal.Options{
			Dir: dir, SegmentSize: segSize, SnapshotEvery: snapshot, Sync: fsync,
		})
		if err != nil {
			return err
		}
		defer l.Close()
		cfg.Log = l
		if st := l.State(); st.Events > 0 {
			fmt.Printf("recovered %d events through chronon %d (%d recovered from log replay",
				st.Events, st.LastAt, l.Stats().RecoveredEvents)
			if tb := l.Stats().TruncatedBytes; tb > 0 {
				fmt.Printf(", %d torn bytes truncated", tb)
			}
			fmt.Println(")")
		} else {
			fmt.Printf("fresh log in %s\n", dir)
		}
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "status-watch", Query: "status_q",
		Issue: s.Now(), Period: 11,
		Kind: deadline.Firm, Deadline: timeseq.Time(evalCost) + 3, MinUseful: 1,
	}); err != nil {
		return err
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "temp-trend", Query: "temp_q",
		Issue: s.Now(), Period: 23,
		Kind: deadline.Soft, Deadline: 5, MinUseful: 2,
		U: deadline.Hyperbolic(10, 5),
	}); err != nil {
		return err
	}
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client(s, id, ops, deadln)
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if err := s.Session(i).Flush(); err != nil {
			return err
		}
	}

	// A temporal read against the published history: the temperature half a
	// horizon ago, served lock-free from the as-of snapshot.
	horizon := s.HistoryHorizon()
	if v, ok := s.ValueAsOf("temp", horizon/2); ok {
		fmt.Printf("as-of read: temp was %q at chronon %d (horizon %d)\n", v, horizon/2, horizon)
	}

	s.Stop() // syncs the WAL and folds its fsync counters into the metrics
	m := s.Metrics.Snapshot()

	fmt.Println()
	fmt.Print(m.Table())
	fmt.Println()
	fmt.Println("periodic queries:")
	for _, p := range s.PeriodicReport() {
		fmt.Printf("  %-14s issued %4d  hit %4d  missed %4d\n", p.Name, p.Issued, p.Hit, p.Missed)
	}
	if got, want := m.QueriesIn, m.QueriesAccounted(); got != want {
		return fmt.Errorf("conservation violated: %d queries in, %d accounted", got, want)
	}
	fmt.Printf("\nconservation: %d queries in == %d rejected + %d hit + %d missed + %d no-deadline ✓\n",
		m.QueriesIn, m.QueriesRejected, m.DeadlineHit, m.DeadlineMiss, m.NoDeadline)
	return nil
}

func statusOf(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

// client is one synthetic session: a deterministic mix of sensor samples,
// firm- and soft-deadline queries, and no-deadline reads.
func client(s *server.Server, id, ops int, deadln uint64) {
	c := s.Session(id)
	for op := 0; op < ops; op++ {
		switch op % 5 {
		case 0, 1:
			_ = c.InjectSample("temp", strconv.Itoa(18+(id*7+op)%12))
		case 2:
			_ = c.InjectSample("pressure", strconv.Itoa(99+(id+op)%4))
		case 3:
			_, _ = c.Query(server.QueryRequest{
				Query: "status_q", Candidate: "ok",
				Kind: deadline.Firm, Deadline: timeseq.Time(deadln), MinUseful: 1,
			})
		case 4:
			if op%2 == 0 {
				_, _ = c.Query(server.QueryRequest{
					Query: "temp_q",
					Kind:  deadline.Soft, Deadline: timeseq.Time(deadln),
					MinUseful: 2, U: deadline.Hyperbolic(10, timeseq.Time(deadln)),
				})
			} else {
				_, _ = c.Query(server.QueryRequest{Query: "temp_q"})
			}
		}
	}
}
