// Command rtdbd runs the durable, concurrent real-time database server —
// now on the wire. It loads (or crash-recovers) a write-ahead log
// directory and serves the rtwire protocol over TCP: timed sensor samples,
// firm/soft-deadline queries whose deadlines travel with them, temporal
// as-of reads, and metrics snapshots, with periodic standing queries
// evaluated server-side.
//
// With -listen it serves real sockets until interrupted:
//
//	go run ./cmd/rtdbd -dir /tmp/rtdbd -listen 127.0.0.1:7677 -sessions 32
//
// and a load generator drives it from another terminal:
//
//	go run ./cmd/rtdbload -addr 127.0.0.1:7677 -conns 8 -ops 500
//
// Without -listen it runs the synthetic workload — the same client mix,
// but routed through the client package against an in-process loopback
// listener, so the synthetic and network paths cannot diverge. Run it
// twice against the same -dir to watch recovery replay the log.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"

	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

func main() {
	var (
		dir      = flag.String("dir", "", "WAL directory (empty: run without durability)")
		listen   = flag.String("listen", "", "serve rtwire over TCP on this address until interrupted (empty: run the synthetic workload)")
		sessions = flag.Int("sessions", 8, "server sessions == max concurrent connections")
		ops      = flag.Int("ops", 200, "operations per synthetic connection")
		segSize  = flag.Int64("segment-size", 1<<20, "WAL segment rotation size (bytes)")
		snapshot = flag.Uint64("snapshot-every", 2000, "WAL catalog snapshot period (events, 0: never)")
		fsync    = flag.Bool("fsync", false, "fsync the WAL after every append")
		evalCost = flag.Uint64("eval-cost", 2, "chronons one query evaluation costs")
		deadln   = flag.Uint64("deadline", 40, "relative firm deadline for synthetic client queries (chronons)")
		queue    = flag.Int("queue-depth", 64, "per-session queue depth")
	)
	flag.Parse()
	if err := run(*dir, *listen, *sessions, *ops, *segSize, *snapshot, *fsync, *evalCost, *deadln, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "rtdbd:", err)
		os.Exit(1)
	}
}

func run(dir, listen string, sessions, ops int, segSize int64, snapshot uint64, fsync bool,
	evalCost, deadln uint64, queue int) error {
	cfg := server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "25"},
			Images: []*rtdb.ImageObject{
				{Name: "temp", Period: 5},
				{Name: "pressure", Period: 7},
			},
			Derived: []*rtdb.DerivedObject{
				{Name: "status", Sources: []string{"temp", "limit"}, Derive: statusOf},
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusOf},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
			"temp_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest("temp"); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			},
		},
		Rules: []rtdb.Rule{
			{
				Name: "overheat", On: "sample:temp", Mode: rtdb.Immediate,
				If: func(db *rtdb.DB, e rtdb.Event) bool {
					t, _ := strconv.Atoi(e.Attr["value"])
					return t > 25
				},
				Then: func(db *rtdb.DB, e rtdb.Event) {
					db.Raise(rtdb.Event{Kind: "alarm", At: e.At, Attr: e.Attr})
				},
			},
			{
				Name: "log-alarm", On: "alarm", Mode: rtdb.Immediate,
				Then: func(db *rtdb.DB, e rtdb.Event) {},
			},
		},
		Sessions:   sessions,
		QueueDepth: queue,
		EvalCost:   evalCost,
	}

	if dir != "" {
		l, err := wal.Open(wal.Options{
			Dir: dir, SegmentSize: segSize, SnapshotEvery: snapshot, Sync: fsync,
		})
		if err != nil {
			return err
		}
		defer l.Close()
		cfg.Log = l
		if st := l.State(); st.Events > 0 {
			fmt.Printf("recovered %d events through chronon %d (%d recovered from log replay",
				st.Events, st.LastAt, l.Stats().RecoveredEvents)
			if tb := l.Stats().TruncatedBytes; tb > 0 {
				fmt.Printf(", %d torn bytes truncated", tb)
			}
			fmt.Println(")")
		} else {
			fmt.Printf("fresh log in %s\n", dir)
		}
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "status-watch", Query: "status_q",
		Issue: s.Now(), Period: 11,
		Kind: deadline.Firm, Deadline: timeseq.Time(evalCost) + 3, MinUseful: 1,
	}); err != nil {
		return err
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "temp-trend", Query: "temp_q",
		Issue: s.Now(), Period: 23,
		Kind: deadline.Soft, Deadline: 5, MinUseful: 2,
		U: deadline.Hyperbolic(10, 5),
	}); err != nil {
		return err
	}
	s.Start()

	ns := netserve.New(s, netserve.Options{})
	addr := listen
	if addr == "" {
		addr = "127.0.0.1:0" // synthetic mode: in-process loopback
	}
	bound, err := ns.Listen(addr)
	if err != nil {
		s.Stop()
		return err
	}
	fmt.Printf("serving rtwire on %s (%d sessions)\n", bound, sessions)

	if listen != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\ndraining...")
	} else if err := synthetic(bound.String(), sessions, ops, deadln); err != nil {
		_ = ns.Close()
		s.Stop()
		return err
	}

	if err := ns.Close(); err != nil {
		return err
	}
	s.Stop() // syncs the WAL and folds its fsync counters into the metrics
	return report(s, ns)
}

// synthetic drives the server with conns concurrent network clients — the
// same op mix a real deployment would send, through the same client
// package and TCP stack rtdbload uses.
func synthetic(addr string, conns, ops int, deadln uint64) error {
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("syn-%d", id)})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			drive(c, id, ops, deadln)
			if err := c.Flush(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	// A temporal read against the published history, over the wire: first
	// learn the horizon, then read the temperature half a horizon ago.
	c, err := client.Dial(addr, client.Options{Name: "syn-asof"})
	if err != nil {
		return err
	}
	defer c.Close()
	if _, _, horizon, err := c.AsOf("temp", 0); err == nil && horizon > 0 {
		if v, ok, _, err := c.AsOf("temp", horizon/2); err == nil && ok {
			fmt.Printf("as-of read: temp was %q at chronon %d (horizon %d)\n", v, horizon/2, horizon)
		}
	}
	return nil
}

// drive is one synthetic connection: a deterministic mix of sensor
// samples, firm- and soft-deadline queries, and no-deadline reads.
func drive(c *client.Client, id, ops int, deadln uint64) {
	for op := 0; op < ops; op++ {
		switch op % 5 {
		case 0, 1:
			_ = c.InjectSample("temp", strconv.Itoa(18+(id*7+op)%12))
		case 2:
			_ = c.InjectSample("pressure", strconv.Itoa(99+(id+op)%4))
		case 3:
			_, _ = c.Query(client.Query{
				Query: "status_q", Candidate: "ok",
				Kind: deadline.Firm, Deadline: timeseq.Time(deadln), MinUseful: 1,
			})
		case 4:
			if op%2 == 0 {
				_, _ = c.Query(client.Query{
					Query: "temp_q",
					Kind:  deadline.Soft, Deadline: timeseq.Time(deadln),
					MinUseful: 2,
					Decay:     rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 10},
				})
			} else {
				_, _ = c.Query(client.Query{Query: "temp_q"})
			}
		}
	}
}

// report prints the metrics table, the wire counters, the periodic tally,
// and checks the conservation law end-to-end.
func report(s *server.Server, ns *netserve.Server) error {
	m := s.Metrics.Snapshot()
	fmt.Println()
	fmt.Print(m.Table())
	fmt.Println()
	fmt.Println("wire:")
	w := ns.Wire.Snapshot()
	for _, p := range w.Pairs() {
		fmt.Printf("  %-24s %d\n", p.Name, p.Value)
	}
	fmt.Println("periodic queries:")
	for _, p := range s.PeriodicReport() {
		fmt.Printf("  %-14s issued %4d  hit %4d  missed %4d\n", p.Name, p.Issued, p.Hit, p.Missed)
	}
	if got, want := m.QueriesIn, m.QueriesAccounted(); got != want {
		return fmt.Errorf("conservation violated: %d queries in, %d accounted", got, want)
	}
	fmt.Printf("\nconservation: %d queries in == %d rejected + %d hit + %d missed + %d no-deadline ✓ (%d expired on arrival)\n",
		m.QueriesIn, m.QueriesRejected, m.DeadlineHit, m.DeadlineMiss, m.NoDeadline, m.ExpiredOnArrival)
	return nil
}

func statusOf(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}
