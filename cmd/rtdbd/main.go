// Command rtdbd runs the durable, concurrent real-time database server —
// now on the wire. It loads (or crash-recovers) a write-ahead log
// directory and serves the rtwire protocol over TCP: timed sensor samples,
// firm/soft-deadline queries whose deadlines travel with them, temporal
// as-of reads, and metrics snapshots, with periodic standing queries
// evaluated server-side.
//
// With -listen it serves real sockets until interrupted:
//
//	go run ./cmd/rtdbd -dir /tmp/rtdbd -listen 127.0.0.1:7677 -sessions 32
//
// and a load generator drives it from another terminal:
//
//	go run ./cmd/rtdbload -addr 127.0.0.1:7677 -conns 8 -ops 500
//
// Without -listen it runs the synthetic workload — the same client mix,
// but routed through the client package against an in-process loopback
// listener, so the synthetic and network paths cannot diverge. Run it
// twice against the same -dir to watch recovery replay the log.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/rtdb/client"
	wal "rtc/internal/rtdb/log"
	"rtc/internal/rtdb/netserve"
	"rtc/internal/rtdb/replica"
	"rtc/internal/rtdb/server"
	"rtc/internal/rtwire"
	"rtc/internal/timeseq"
)

func main() {
	var (
		dir      = flag.String("dir", "", "WAL directory (empty: run without durability)")
		listen   = flag.String("listen", "", "serve rtwire over TCP on this address until interrupted (empty: run the synthetic workload)")
		shards   = flag.Int("shards", 1, "shard the keyspace over this many single-shard stacks, one WAL directory and one listener each (1: unsharded, byte-identical layout)")
		sessions = flag.Int("sessions", 8, "server sessions == max concurrent connections")
		ops      = flag.Int("ops", 200, "operations per synthetic connection")
		segSize  = flag.Int64("segment-size", 1<<20, "WAL segment rotation size (bytes)")
		snapshot = flag.Uint64("snapshot-every", 2000, "WAL catalog snapshot period (events, 0: never)")
		fsync    = flag.Bool("fsync", false, "fsync the WAL after every append")
		fsyncWin = flag.Duration("fsync-window", 200*time.Microsecond, "group-commit window with -fsync: concurrent appends share one fsync per window (0: fsync each append)")
		evalCost = flag.Uint64("eval-cost", 2, "chronons one query evaluation costs")
		deadln   = flag.Uint64("deadline", 40, "relative firm deadline for synthetic client queries (chronons)")
		queue    = flag.Int("queue-depth", 64, "per-session queue depth")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")

		replicaOf    = flag.String("replica-of", "", "follow this primary address as a hot standby (requires -dir)")
		promote      = flag.Bool("promote", false, "bump the fencing epoch in -dir before serving (turn a stopped replica into the new primary)")
		promoteAfter = flag.Duration("promote-after", 0, "replica mode: auto-promote after this much primary silence (0: manual, SIGHUP); use several times the primary heartbeat interval (1s)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}
	var err error
	switch {
	case *replicaOf != "":
		err = runReplica(*dir, *listen, *replicaOf, *promoteAfter, *sessions, *segSize, *snapshot, *fsync, *fsyncWin, *evalCost, *queue)
	case *shards > 1:
		err = runSharded(*dir, *listen, *shards, *sessions, *ops, *segSize, *snapshot, *fsync, *fsyncWin, *evalCost, *deadln, *queue)
	default:
		err = run(*dir, *listen, *sessions, *ops, *segSize, *snapshot, *fsync, *fsyncWin, *promote, *evalCost, *deadln, *queue)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtdbd:", err)
		os.Exit(1)
	}
}

func run(dir, listen string, sessions, ops int, segSize int64, snapshot uint64, fsync bool,
	fsyncWin time.Duration, promote bool, evalCost, deadln uint64, queue int) error {
	cfg := serverConfig(sessions, queue, evalCost)

	if dir != "" {
		l, err := wal.Open(wal.Options{
			Dir: dir, SegmentSize: segSize, SnapshotEvery: snapshot, Sync: fsync,
			GroupWindow: fsyncWin,
		})
		if err != nil {
			return err
		}
		defer l.Close()
		cfg.Log = l
		if st := l.State(); st.Events > 0 {
			fmt.Printf("recovered %d events through chronon %d (%d recovered from log replay",
				st.Events, st.LastAt, l.Stats().RecoveredEvents)
			if tb := l.Stats().TruncatedBytes; tb > 0 {
				fmt.Printf(", %d torn bytes truncated", tb)
			}
			fmt.Println(")")
		} else {
			fmt.Printf("fresh log in %s\n", dir)
		}
		if promote {
			// Turn a (stopped) replica's log into the new primary's: fence
			// the old one out before serving a single request.
			e, err := l.BumpEpoch()
			if err != nil {
				return err
			}
			fmt.Printf("promoted: fencing epoch now %d\n", e)
		}
	} else if promote {
		return fmt.Errorf("-promote needs -dir (the replica's WAL to take over)")
	}

	return serve(cfg, listen, ops, evalCost, deadln)
}

// serverConfig is the demo deployment every rtdbd role shares: primaries
// install it as their spec, replicas use its catalog and registry for
// degraded standby queries, and a promoted replica becomes a primary with
// the identical books.
func serverConfig(sessions, queue int, evalCost uint64) server.Config {
	return server.Config{
		Spec: rtdb.Spec{
			Invariants: map[string]rtdb.Value{"limit": "25"},
			Images: []*rtdb.ImageObject{
				{Name: "temp", Period: 5},
				{Name: "pressure", Period: 7},
			},
			Derived: []*rtdb.DerivedObject{
				{Name: "status", Sources: []string{"temp", "limit"}, Derive: statusOf},
			},
		},
		Registry: rtdb.DeriveRegistry{"status": statusOf},
		Catalog: rtdb.Catalog{
			"status_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.DeriveNow("status"); ok {
					return []rtdb.Value{s}
				}
				return nil
			},
			"temp_q": func(v *rtdb.View) []rtdb.Value {
				if s, ok := v.Latest("temp"); ok {
					return []rtdb.Value{s.Value}
				}
				return nil
			},
		},
		Rules: []rtdb.Rule{
			{
				Name: "overheat", On: "sample:temp", Mode: rtdb.Immediate,
				If: func(db *rtdb.DB, e rtdb.Event) bool {
					t, _ := strconv.Atoi(e.Attr["value"])
					return t > 25
				},
				Then: func(db *rtdb.DB, e rtdb.Event) {
					db.Raise(rtdb.Event{Kind: "alarm", At: e.At, Attr: e.Attr})
				},
			},
			{
				Name: "log-alarm", On: "alarm", Mode: rtdb.Immediate,
				Then: func(db *rtdb.DB, e rtdb.Event) {},
			},
		},
		Sessions:   sessions,
		QueueDepth: queue,
		EvalCost:   evalCost,
	}
}

// serve runs a primary to completion: periodic queries, the rtwire
// listener, then either real traffic until a signal or the synthetic
// workload, and finally the metrics report with the conservation check.
func serve(cfg server.Config, listen string, ops int, evalCost, deadln uint64) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "status-watch", Query: "status_q",
		Issue: s.Now(), Period: 11,
		Kind: deadline.Firm, Deadline: timeseq.Time(evalCost) + 3, MinUseful: 1,
	}); err != nil {
		return err
	}
	if err := s.RegisterPeriodic(server.PeriodicQuery{
		Name: "temp-trend", Query: "temp_q",
		Issue: s.Now(), Period: 23,
		Kind: deadline.Soft, Deadline: 5, MinUseful: 2,
		U: deadline.Hyperbolic(10, 5),
	}); err != nil {
		return err
	}
	s.Start()

	// A 1s beacon keeps replication links visibly alive, so a replica's
	// -promote-after only needs to clear seconds of genuine silence.
	ns := netserve.New(s, netserve.Options{HeartbeatInterval: time.Second})
	addr := listen
	if addr == "" {
		addr = "127.0.0.1:0" // synthetic mode: in-process loopback
	}
	bound, err := ns.Listen(addr)
	if err != nil {
		s.Stop()
		return err
	}
	fmt.Printf("serving rtwire on %s (%d sessions)\n", bound, cfg.Sessions)

	if listen != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\ndraining...")
	} else if err := synthetic(bound.String(), cfg.Sessions, ops, deadln); err != nil {
		_ = ns.Close()
		s.Stop()
		return err
	}

	if err := ns.Close(); err != nil {
		return err
	}
	s.Stop() // syncs the WAL and folds its fsync counters into the metrics
	return report(s, ns)
}

// synthetic drives the server with conns concurrent network clients — the
// same op mix a real deployment would send, through the same client
// package and TCP stack rtdbload uses — while one standing-query
// subscription watches status_q over the same wire, so every run
// demonstrates the push path next to the polled one.
func synthetic(addr string, conns, ops int, deadln uint64) error {
	// One session is reserved for the subscriber riding along.
	if conns > 1 {
		conns--
	}
	sc, err := client.Dial(addr, client.Options{Name: "syn-sub"})
	if err != nil {
		return err
	}
	defer sc.Close()
	subscription, err := sc.Subscribe(client.SubSpec{
		Query: "status_q", Period: 7,
		Kind: deadline.Soft, Deadline: timeseq.Time(deadln), MinUseful: 1,
		Depth: 16, Buffer: 32,
	})
	if err != nil {
		return err
	}
	var pushes, hits uint64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for p := range subscription.Pushes() {
			pushes++
			if !p.Missed {
				hits++
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("syn-%d", id)})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			drive(c, id, ops, deadln)
			if err := c.Flush(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	// Close out the standing query and audit its stream with the cursor
	// arithmetic every subscriber can run locally. The drivers are flushed,
	// so every tick is scheduled; a short settle lets the pump deliver the
	// tail before the audit coordinates are read.
	time.Sleep(300 * time.Millisecond)
	cursor, receivedC := subscription.Cursor(), subscription.Received()
	dropped, expired := subscription.Tallies()
	local := subscription.LocalDrops()
	if err := subscription.Close(); err != nil {
		return err
	}
	<-subDone
	if receivedC+dropped+expired+local != cursor {
		return fmt.Errorf("standing query audit open: received %d + dropped %d + expired %d + local %d != cursor %d",
			receivedC, dropped, expired, local, cursor)
	}
	fmt.Printf("standing query: %d pushes (%d deadline hits), cursor %d == %d received + %d dropped + %d expired + %d shed ✓\n",
		pushes, hits, cursor, receivedC, dropped, expired, local)

	// A temporal read against the published history, over the wire: first
	// learn the horizon, then read the temperature half a horizon ago.
	c, err := client.Dial(addr, client.Options{Name: "syn-asof"})
	if err != nil {
		return err
	}
	defer c.Close()
	if _, _, horizon, err := c.AsOf("temp", 0); err == nil && horizon > 0 {
		if v, ok, _, err := c.AsOf("temp", horizon/2); err == nil && ok {
			fmt.Printf("as-of read: temp was %q at chronon %d (horizon %d)\n", v, horizon/2, horizon)
		}
	}
	return nil
}

// drive is one synthetic connection: a deterministic mix of sensor
// samples, firm- and soft-deadline queries, and no-deadline reads.
func drive(c *client.Client, id, ops int, deadln uint64) {
	for op := 0; op < ops; op++ {
		switch op % 5 {
		case 0, 1:
			_ = c.InjectSample("temp", strconv.Itoa(18+(id*7+op)%12))
		case 2:
			_ = c.InjectSample("pressure", strconv.Itoa(99+(id+op)%4))
		case 3:
			_, _ = c.Query(client.Query{
				Query: "status_q", Candidate: "ok",
				Kind: deadline.Firm, Deadline: timeseq.Time(deadln), MinUseful: 1,
			})
		case 4:
			if op%2 == 0 {
				_, _ = c.Query(client.Query{
					Query: "temp_q",
					Kind:  deadline.Soft, Deadline: timeseq.Time(deadln),
					MinUseful: 2,
					Decay:     rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 10},
				})
			} else {
				_, _ = c.Query(client.Query{Query: "temp_q"})
			}
		}
	}
}

// report prints the metrics table, the wire counters, the periodic tally,
// and checks the conservation law end-to-end.
func report(s *server.Server, ns *netserve.Server) error {
	m := s.Metrics.Snapshot()
	fmt.Println()
	fmt.Print(m.Table())
	fmt.Println()
	fmt.Println("wire:")
	w := ns.Wire.Snapshot()
	for _, p := range w.Pairs() {
		fmt.Printf("  %-24s %d\n", p.Name, p.Value)
	}
	fmt.Println("periodic queries:")
	for _, p := range s.PeriodicReport() {
		fmt.Printf("  %-14s issued %4d  hit %4d  missed %4d\n", p.Name, p.Issued, p.Hit, p.Missed)
	}
	if got, want := m.QueriesIn, m.QueriesAccounted(); got != want {
		return fmt.Errorf("conservation violated: %d queries in, %d accounted", got, want)
	}
	fmt.Printf("\nconservation: %d queries in == %d rejected + %d hit + %d missed + %d no-deadline ✓ (%d expired on arrival)\n",
		m.QueriesIn, m.QueriesRejected, m.DeadlineHit, m.DeadlineMiss, m.NoDeadline, m.ExpiredOnArrival)
	return nil
}

func statusOf(src map[string]rtdb.Value) rtdb.Value {
	t, _ := strconv.Atoi(src["temp"])
	l, _ := strconv.Atoi(src["limit"])
	if t > l {
		return "high"
	}
	return "ok"
}

// runReplica runs rtdbd as a hot standby: it tails the primary's WAL into
// its own log under -dir, serves standby reads (as-of, metrics, degraded
// soft queries) on -listen, and on promotion — manual via SIGHUP, or
// automatic after -promote-after of primary silence — flips in place to a
// full primary serving the same address with a bumped fencing epoch.
func runReplica(dir, listen, primary string, promoteAfter time.Duration,
	sessions int, segSize int64, snapshot uint64, fsync bool, fsyncWin time.Duration,
	evalCost uint64, queue int) error {
	if dir == "" {
		return fmt.Errorf("-replica-of needs -dir (the replica keeps its own durable WAL)")
	}
	cfg := serverConfig(sessions, queue, evalCost)
	r, err := replica.Open(replica.Config{
		Primary: primary,
		WAL: wal.Options{
			Dir: dir, SegmentSize: segSize, SnapshotEvery: snapshot, Sync: fsync,
			GroupWindow: fsyncWin,
		},
		Name:     "rtdbd-replica",
		Catalog:  cfg.Catalog,
		Registry: cfg.Registry,

		PromoteAfter: promoteAfter,
	})
	if err != nil {
		return err
	}
	r.Start()

	addr := listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	bound, err := r.Listen(addr)
	if err != nil {
		_ = r.Close()
		return err
	}
	fmt.Printf("replica of %s: seq %d epoch %d, hot-standby reads on %s\n",
		primary, r.Seq(), r.Epoch(), bound)
	if promoteAfter > 0 {
		fmt.Printf("auto-promotion after %v of primary silence; SIGHUP promotes now\n", promoteAfter)
	} else {
		fmt.Println("promotion is manual: SIGHUP promotes")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	for {
		select {
		case <-sig:
			fmt.Println("\ndraining replica...")
			return r.Close()
		case <-hup:
			if _, err := r.Promote(); err != nil {
				_ = r.Close()
				return err
			}
		case <-r.Promoted():
			// The standby listener goes down with Close; the promoted
			// primary reopens the same address, now accepting writes.
			if err := r.Close(); err != nil {
				return err
			}
			l := r.Log()
			defer l.Close()
			fmt.Printf("promoted: seq %d epoch %d; serving as primary on %s\n",
				l.Seq(), l.Epoch(), bound)
			cfg.Log = l
			return serve(cfg, bound.String(), 0, evalCost, 0)
		}
	}
}
