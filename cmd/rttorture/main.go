// Command rttorture runs the deterministic crash-torture sweeps of
// internal/rtdb/torture against the rtdbd WAL and server.
//
// Every fault point is reproducible: a failing sweep prints one command
// (rttorture -mode M -seed S -at K -events N) that replays exactly that
// workload, fault, and crash materialization. With -corpus DIR the
// post-crash segment images of failing points are exported as seed inputs
// for the log package's FuzzSegmentRecovery corpus, and the malformed
// byte streams the partition sweep's network faults left behind are
// exported as seeds for rtwire's FuzzFrameDecode corpus — whether or not
// the sweep failed (a stream the codec survived is still a seed).
//
// Usage:
//
//	rttorture -mode all -seeds 3 -events 90        # full sweep
//	rttorture -mode crash -seed 2 -at 41 -events 40  # replay one failure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtc/internal/rtdb/torture"
)

func main() {
	var (
		mode    = flag.String("mode", "all", "fault family: all|crash|eio|rename|chaos|failover|groupcommit|shard|partition")
		seed    = flag.Uint64("seed", 1, "base sweep seed")
		seeds   = flag.Int("seeds", 1, "number of consecutive seeds to sweep")
		events  = flag.Int("events", 90, "workload length")
		stride  = flag.Int("stride", 1, "test every Nth fault point")
		at      = flag.Uint64("at", 0, "single fault point (reproduction mode)")
		shards  = flag.Int("shards", 4, "deployment width of the shard sweep")
		victim  = flag.Int("victim", 0, "shard whose WAL takes the cut when -at pins one shard-sweep point")
		nosync  = flag.Bool("nosync", false, "disable per-append fsync (weakens the durability bound)")
		gcwin   = flag.Duration("fsync-window", 0, "run the crash/eio/rename/failover sweeps with this group-commit window (0: per-append fsync; groupcommit mode always batches)")
		corpus  = flag.String("corpus", "", "directory to export failing crash images as fuzz corpus seeds")
		verbose = flag.Bool("v", false, "per-sweep progress lines")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}

	want := func(m torture.Mode) bool {
		return *mode == "all" || *mode == string(m)
	}
	if !want(torture.ModeCrash) && !want(torture.ModeEIO) && !want(torture.ModeRename) && !want(torture.ModeChaos) && !want(torture.ModeFailover) && !want(torture.ModeGroupCommit) && !want(torture.ModeShard) && !want(torture.ModePartition) {
		fmt.Fprintf(os.Stderr, "rttorture: unknown -mode %q (want all|crash|eio|rename|chaos|failover|groupcommit|shard|partition)\n", *mode)
		os.Exit(2)
	}

	total := &torture.Report{}
	for i := 0; i < *seeds; i++ {
		s := *seed + uint64(i)
		cfg := torture.Config{
			Seed: s, Events: *events, Stride: *stride, At: *at,
			Shards: *shards, Victim: *victim,
			NoSync: *nosync, GroupWindow: *gcwin, Logf: logf,
		}
		if want(torture.ModeCrash) {
			total.Merge(cfg.CrashSweep())
		}
		if want(torture.ModeEIO) {
			total.Merge(cfg.EIOSweep())
		}
		if want(torture.ModeRename) {
			total.Merge(cfg.RenameSweep())
		}
		if want(torture.ModeFailover) {
			total.Merge(cfg.FailoverSweep())
		}
		if want(torture.ModeGroupCommit) {
			total.Merge(cfg.GroupCommitSweep())
		}
		if want(torture.ModeShard) {
			total.Merge(cfg.ShardSweep())
		}
		if want(torture.ModePartition) {
			total.Merge(cfg.PartitionSweep())
		}
		if want(torture.ModeChaos) {
			rep := torture.Chaos(torture.ChaosConfig{Seed: s, Logf: logf})
			total.Points++
			if rep.Ok() {
				total.Recoveries++
			}
			total.Failures = append(total.Failures, rep.Failures...)
		}
	}

	fmt.Printf("torture: mode=%s seeds=%d..%d events=%d points=%d recoveries=%d failures=%d\n",
		*mode, *seed, *seed+uint64(*seeds)-1, *events, total.Points, total.Recoveries, len(total.Failures))
	if *corpus != "" {
		n, err := exportCorpus(*corpus, total)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rttorture: corpus export: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "rttorture: exported %d corpus seeds to %s\n", n, *corpus)
		}
	}
	if total.Ok() {
		return
	}
	for _, f := range total.Failures {
		fmt.Fprintf(os.Stderr, "%s\n", f.String())
	}
	os.Exit(1)
}

// exportCorpus writes the sweep's fuzz-seed material in the Go fuzzing
// corpus file format: each failing fault point's post-crash segment
// images (seeds for FuzzSegmentRecovery — drop into
// internal/rtdb/log/testdata/fuzz/FuzzSegmentRecovery), and each
// malformed byte stream the network faults produced (seeds for
// FuzzFrameDecode — drop the rtwire-frame-* files into
// internal/rtwire/testdata/fuzz/FuzzFrameDecode).
func exportCorpus(dir string, rep *torture.Report) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	write := func(file string, body []byte) error {
		seed := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, file), []byte(seed), 0o644); err != nil {
			return err
		}
		n++
		return nil
	}
	for _, f := range rep.Failures {
		for name, img := range f.Segments {
			if err := write(fmt.Sprintf("%s-seed%d-at%d-%s", f.Mode, f.Seed, f.At, name), img); err != nil {
				return n, err
			}
		}
	}
	for key, stream := range rep.Streams {
		if err := write("rtwire-frame-"+key, stream); err != nil {
			return n, err
		}
	}
	return n, nil
}
