package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/client"
	"rtc/internal/stats"
	"rtc/internal/timeseq"
)

// Fan-out mode: W writer connections drive the clock with samples while S
// standing-query subscriptions watch the same catalog query — the
// one-write-many-watchers workload the subscription subsystem exists for.
// Every subscriber audits its own delivery stream with the cursor
// arithmetic (received == cursor − dropped − expired − locally-shed), every
// push's cursor must be strictly increasing even across a resume, and at
// the end the server's own books are fetched over the wire and the push
// conservation law push_scheduled == pushed + push_dropped + push_expired
// is checked remotely. With -addr a failover ring, killing the primary
// mid-run exercises resume-after-promotion: the run then reports
// resubscribes and still requires monotone cursors — no acknowledged push
// replayed, no skip uncounted.

// subTally aggregates one subscription's consumer-side view.
type subTally struct {
	received uint64
	hits     uint64
	lateness []float64 // served − issue, chronons
	lastCur  uint64
	violated string
}

func runFanout(addr string, subscribers, writers, ops int, deadln, period uint64, chronon time.Duration) error {
	if subscribers < 1 || writers < 1 {
		return fmt.Errorf("fanout needs at least 1 subscriber and 1 writer (have %d × %d)", subscribers, writers)
	}
	spec := client.SubSpec{
		Query: "status_q", Period: timeseq.Time(period),
		Kind: deadline.Soft, Deadline: timeseq.Time(deadln), MinUseful: 1,
		Depth: 32, Buffer: 64,
	}

	// Subscriptions share client connections: the subsystem multiplexes any
	// number of standing queries per connection, so the fleet needs far
	// fewer sockets than subscribers.
	nconn := subscribers
	if nconn > 16 {
		nconn = 16
	}
	subClients := make([]*client.Client, nconn)
	for i := range subClients {
		c, err := client.Dial(addr, client.Options{
			Name:            fmt.Sprintf("fan-sub-%d", i),
			ChrononDuration: chronon,
			RetryAttempts:   -1, // failover: exhaust the address list
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		subClients[i] = c
	}

	subs := make([]*client.Subscription, subscribers)
	tallies := make([]*subTally, subscribers)
	var consumers sync.WaitGroup
	start := time.Now()
	for i := 0; i < subscribers; i++ {
		s, err := subClients[i%nconn].Subscribe(spec)
		if err != nil {
			return fmt.Errorf("subscribe %d: %w", i, err)
		}
		subs[i] = s
		tl := &subTally{}
		tallies[i] = tl
		consumers.Add(1)
		go func(s *client.Subscription, tl *subTally) {
			defer consumers.Done()
			for p := range s.Pushes() {
				if p.Cursor <= tl.lastCur && tl.violated == "" {
					tl.violated = fmt.Sprintf("cursor %d after %d", p.Cursor, tl.lastCur)
				}
				tl.lastCur = p.Cursor
				tl.received++
				if !p.Missed {
					tl.hits++
				}
				tl.lateness = append(tl.lateness, float64(p.Served-p.Issue))
			}
		}(s, tl)
	}

	// Writers: closed-loop sample injection; every acked write advances the
	// server clock one chronon and so matures standing-query ticks.
	var (
		wg    sync.WaitGroup
		acked atomic.Uint64
		werrs = make(chan error, writers)
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{
				Name:            fmt.Sprintf("fan-writer-%d", w),
				ChrononDuration: chronon,
				RetryAttempts:   -1,
				HeartbeatInterval: 100 * time.Millisecond,
			})
			if err != nil {
				werrs <- err
				return
			}
			defer c.Close()
			// Each op is retried through outages: during a failover window
			// writes bounce off the standby read-only until promotion, and
			// the run's job is to still be writing when the successor comes
			// up — not to burn its budget on fast failures.
			for op := 0; op < ops; op++ {
				for attempt := 0; ; attempt++ {
					if c.InjectSample("temp", fmt.Sprint(18+(w*7+op)%12)) == nil {
						acked.Add(1)
						break
					}
					if attempt > 2000 {
						werrs <- fmt.Errorf("writer %d: outage outlasted the retry budget", w)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			var ferr error
			for attempt := 0; attempt < 100; attempt++ {
				if ferr = c.Flush(); ferr == nil {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if ferr != nil {
				werrs <- ferr
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-werrs:
		return err
	default:
	}

	// Quiesce: the flushed samples have scheduled every tick they imply;
	// give the pumps a moment to deliver, then cancel and join.
	time.Sleep(500 * time.Millisecond)
	elapsed := time.Since(start)

	var resubs uint64
	for _, c := range subClients {
		resubs += c.Stats.Resubscribes.Load()
	}
	var auditErr error
	audited := 0
	for i, s := range subs {
		// Read the audit coordinates before Close tears the stream down.
		cursor, receivedC := s.Cursor(), s.Received()
		dropped, expired := s.Tallies()
		local := s.LocalDrops()
		if err := s.Close(); err != nil {
			return err
		}
		// The exact arithmetic holds per attachment; a resumed subscription
		// restarts its tallies, so only monotonicity is checked then.
		if resubs == 0 && receivedC+dropped+expired+local != cursor && auditErr == nil {
			auditErr = fmt.Errorf("sub %d audit open: received %d + dropped %d + expired %d + local %d != cursor %d",
				i, receivedC, dropped, expired, local, cursor)
		}
		if resubs == 0 {
			audited++
		}
	}
	for _, c := range subClients {
		if err := c.Close(); err != nil {
			return err
		}
	}
	consumers.Wait()
	if auditErr != nil {
		return auditErr
	}

	var (
		received, hits uint64
		hitRates       []float64
		lateAll        []float64
	)
	for i, tl := range tallies {
		if tl.violated != "" {
			return fmt.Errorf("sub %d cursor regression: %s", i, tl.violated)
		}
		received += tl.received
		hits += tl.hits
		if tl.received > 0 {
			hitRates = append(hitRates, 100*float64(tl.hits)/float64(tl.received))
		}
		lateAll = append(lateAll, tl.lateness...)
	}
	if received == 0 {
		return fmt.Errorf("fan-out delivered nothing: %d writers × %d ops scheduled no pushes", writers, ops)
	}

	fmt.Printf("fanout: %d writers × %d subscribers (period %d, soft deadline %d) in %v\n",
		writers, subscribers, period, deadln, elapsed.Round(time.Millisecond))
	fmt.Printf("writes: %d acked (%.0f/s)  pushes: %d received, %d hit (%.1f%%), %d resubscribes\n",
		acked.Load(), float64(acked.Load())/elapsed.Seconds(),
		received, hits, 100*float64(hits)/float64(received), resubs)
	if len(hitRates) > 0 {
		fmt.Printf("per-subscription deadline-hit %%: p50 %.1f  p90 %.1f  p99 %.1f  min %.1f\n",
			stats.Percentile(hitRates, 50), stats.Percentile(hitRates, 90),
			stats.Percentile(hitRates, 99), stats.Percentile(hitRates, 0))
	}
	if len(lateAll) > 0 {
		fmt.Printf("push service time (served−issue chronons): p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
			stats.Percentile(lateAll, 50), stats.Percentile(lateAll, 90),
			stats.Percentile(lateAll, 99), stats.Percentile(lateAll, 100))
	}
	if resubs == 0 {
		fmt.Printf("delivery audit: %d/%d subscriptions closed exactly (received == cursor − dropped − expired − local) ✓\n",
			audited, subscribers)
	} else {
		fmt.Printf("delivery audit: %d resubscribes — per-attachment arithmetic skipped, cursor monotonicity held across every resume ✓\n", resubs)
	}

	// The server's own books, fetched over the wire: the push conservation
	// law must close no matter what the clients saw.
	c, err := client.Dial(addr, client.Options{Name: "fan-metrics", RetryAttempts: -1})
	if err != nil {
		return err
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		return err
	}
	mm := m.Map()
	scheduled := mm["push_scheduled"]
	accounted := mm["pushed"] + mm["push_dropped"] + mm["push_expired"]
	if scheduled != accounted {
		return fmt.Errorf("push conservation violated on server: %d scheduled, %d accounted (pushed %d dropped %d expired %d)",
			scheduled, accounted, mm["pushed"], mm["push_dropped"], mm["push_expired"])
	}
	fmt.Printf("conservation (server books): %d push_scheduled == %d pushed + %d dropped + %d expired ✓\n",
		scheduled, mm["pushed"], mm["push_dropped"], mm["push_expired"])
	if mm["subs_opened"] != mm["subs_closed"] {
		return fmt.Errorf("subscription books open: %d opened, %d closed", mm["subs_opened"], mm["subs_closed"])
	}
	fmt.Printf("subscriptions: %d opened == %d closed ✓\n", mm["subs_opened"], mm["subs_closed"])
	return nil
}
