package main

import (
	"fmt"
	"time"

	"rtc/internal/rtdb/client"
	"rtc/internal/stats"
)

// runSoak ages a server by n injected samples and checks that serving
// latency stays flat: it times an as-of read and a no-deadline query at
// regular intervals along the way, then compares the p99 of the last tenth
// of the run against the p99 of the first tenth. A server that rebuilds
// its snapshot from scratch or scans histories linearly fails the factor
// bound as the history grows; the incremental-publish + indexed-timeline
// design passes it at millions of chronons.
func runSoak(addr string, n int, factor float64, chronon time.Duration) error {
	const qEvery = 50 // one timed probe pair per this many injections
	c, err := client.Dial(addr, client.Options{
		Name: "soak", ChrononDuration: chronon,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	var asofLat, queryLat []float64 // microseconds, in run order
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := c.InjectSample("temp", soakValue(i)); err != nil {
			return fmt.Errorf("inject %d: %w", i, err)
		}
		if (i+1)%qEvery != 0 {
			continue
		}
		// Close the loop before probing, so the probe measures serving
		// latency at an applied history of known depth, not queue depth.
		if err := c.Flush(); err != nil {
			return fmt.Errorf("flush at %d: %w", i, err)
		}
		t0 := time.Now()
		if _, _, _, err := c.AsOf("temp", 1); err != nil {
			return fmt.Errorf("asof at %d: %w", i, err)
		}
		asofLat = append(asofLat, float64(time.Since(t0).Microseconds()))
		t0 = time.Now()
		if _, err := c.Query(client.Query{Query: "temp_q"}); err != nil {
			return fmt.Errorf("query at %d: %w", i, err)
		}
		queryLat = append(queryLat, float64(time.Since(t0).Microseconds()))
	}
	elapsed := time.Since(start)

	fail := false
	report := func(name string, lat []float64) {
		tenth := len(lat) / 10
		if tenth == 0 {
			fmt.Printf("%s: too few probes (%d) for a window comparison\n", name, len(lat))
			return
		}
		early := stats.Percentile(lat[:tenth], 99)
		late := stats.Percentile(lat[len(lat)-tenth:], 99)
		verdict := "✓"
		if late > factor*early {
			verdict = "✗"
			fail = true
		}
		fmt.Printf("%s p99 µs: early %.0f → late %.0f (bound %.1f×) %s\n",
			name, early, late, factor, verdict)
	}
	fmt.Printf("soak: %d samples applied in %v, %d probe pairs\n",
		n, elapsed.Round(time.Millisecond), len(asofLat))
	report("asof", asofLat)
	report("query", queryLat)
	if fail {
		return fmt.Errorf("soak: late-run p99 exceeded %.1f× early-run p99 — serving latency is not flat", factor)
	}
	return nil
}

// soakValue cycles a small value alphabet so the aged history still has
// value changes at every depth.
func soakValue(i int) string {
	return soakValues[i%len(soakValues)]
}

var soakValues = []string{"18", "19", "20", "21", "22", "23", "24", "25"}
