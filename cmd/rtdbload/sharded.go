// Sharded load: -shard-addrs drives a rtdbd -shards deployment through
// client-side placement. Every connection holds one client per shard
// listener, routes each sample with rtwire.ShardOf (the Welcome-announced
// deployment width), and the report breaks throughput out per shard —
// including each shard's own wal_seq durability watermark, read by name
// from its labelled metrics table.
package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/client"
	"rtc/internal/timeseq"
)

// sensorName mirrors the sharded rtdbd demo bank: 16 sensors spread over
// the shards by the placement hash.
func sensorName(i int) string { return fmt.Sprintf("sensor-%02d", i%16) }

func runSharded(list string, conns, ops int, deadln uint64, chronon time.Duration) error {
	addrs := strings.Split(list, ",")
	shards := len(addrs)
	perShard := make([]atomic.Uint64, shards)
	var queries, hits, misses atomic.Uint64

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cs := make([]*client.Client, shards)
			for s, addr := range addrs {
				c, err := client.Dial(addr, client.Options{
					Name:            fmt.Sprintf("load-%d-%d", id, s),
					ChrononDuration: chronon,
				})
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				if got := c.Shards(); got != uint64(shards) {
					errs <- fmt.Errorf("listener %s announces %d shards, -shard-addrs lists %d", addr, got, shards)
					return
				}
				if got := c.Shard(); got != uint64(s) {
					errs <- fmt.Errorf("listener %s is shard %d, listed at position %d (order -shard-addrs shard 0 first)", addr, got, s)
					return
				}
				cs[s] = c
			}
			route := func(object string) (*client.Client, int) {
				s := int(cs[0].ShardFor(object))
				return cs[s], s
			}
			inject := func(object, value string) {
				c, s := route(object)
				if c.InjectSample(object, value) == nil {
					perShard[s].Add(1)
				}
			}
			for op := 0; op < ops; op++ {
				switch op % 5 {
				case 0:
					inject("temp", strconv.Itoa(18+(id*7+op)%12))
				case 1:
					sensor := sensorName(id + op)
					inject(sensor, strconv.Itoa(op%100))
				case 2:
					inject("pressure", strconv.Itoa(99+(id+op)%4))
				case 3, 4:
					// Both demo queries read temp's shard.
					c, _ := route("temp")
					res, err := c.Query(client.Query{
						Query: "status_q", Candidate: "ok",
						Kind: deadline.Firm, Deadline: timeseq.Time(deadln), MinUseful: 1,
					})
					queries.Add(1)
					if err == nil && !res.Missed && !res.ExpiredOnArrival {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
			}
			for _, c := range cs {
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	fmt.Printf("%d conns × %d ops over %d shards in %v\n",
		conns, ops, shards, elapsed.Round(time.Millisecond))
	fmt.Printf("queries: %d  hit %d  miss %d\n", queries.Load(), hits.Load(), misses.Load())

	// Per-shard throughput and durability, from each listener's own books.
	var totalSamples, totalIn, totalAccounted uint64
	for s, addr := range addrs {
		c, err := client.Dial(addr, client.Options{Name: "load-shard-report"})
		if err != nil {
			return err
		}
		m, err := c.Metrics()
		c.Close()
		if err != nil {
			return err
		}
		mm := m.Map()
		if got, ok := mm["shard"]; !ok || got != uint64(s) {
			return fmt.Errorf("listener %s metrics label shard=%d (present=%v), want %d", addr, got, ok, s)
		}
		acked := perShard[s].Load()
		totalSamples += acked
		totalIn += mm["queries_in"]
		totalAccounted += mm["queries_rejected"] + mm["deadline_hit"] + mm["deadline_miss"] + mm["no_deadline"]
		fmt.Printf("shard %d: %6d acked samples (%7.0f/s)  applied %6d  wal_seq %d\n",
			s, acked, float64(acked)/elapsed.Seconds(), mm["samples_applied"], mm["wal_seq"])
	}
	fmt.Printf("all shards: %d acked samples (%.0f/s aggregate)\n",
		totalSamples, float64(totalSamples)/elapsed.Seconds())

	// Cross-shard conservation: each shard's books satisfy the law
	// independently, so the sums must too.
	if totalIn != totalAccounted {
		return fmt.Errorf("cross-shard conservation violated: %d queries in, %d accounted", totalIn, totalAccounted)
	}
	fmt.Printf("cross-shard conservation: %d queries in == %d accounted ✓\n", totalIn, totalAccounted)
	return nil
}
