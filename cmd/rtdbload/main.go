// Command rtdbload is a closed-loop, multi-connection load generator for a
// running rtdbd server: each connection dials the rtwire port, drives a
// deterministic mix of timed samples, firm- and soft-deadline queries, and
// no-deadline reads, waits for every response before the next operation
// (closed loop — offered load tracks service rate), and at the end prints
// the client-side latency/outcome summary plus the server's own metrics
// table fetched over the wire, with the conservation law checked remotely.
//
// Two-terminal example:
//
//	go run ./cmd/rtdbd -listen 127.0.0.1:7677 -sessions 32
//	go run ./cmd/rtdbload -addr 127.0.0.1:7677 -conns 8 -ops 500
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtc/internal/deadline"
	"rtc/internal/rtdb/client"
	"rtc/internal/rtwire"
	"rtc/internal/stats"
	"rtc/internal/timeseq"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7677", "rtdbd rtwire address, or a comma-separated failover list (primary first)")
		conns   = flag.Int("conns", 8, "concurrent connections")
		ops     = flag.Int("ops", 200, "operations per connection")
		deadln  = flag.Uint64("deadline", 40, "relative firm deadline (client chronons)")
		chronon = flag.Duration("chronon", time.Millisecond, "wall-clock length of one client chronon")

		soak       = flag.Int("soak", 0, "age the server by this many injected samples and assert flat serving latency (0: run the mixed load)")
		soakFactor = flag.Float64("soak-factor", 8, "soak mode: max allowed late-run/early-run p99 ratio")

		fanout  = flag.Int("fanout", 0, "standing-query fan-out mode: this many push subscribers watching status_q (0: run the mixed load)")
		writers = flag.Int("writers", 4, "fanout mode: writer connections driving the clock")
		period  = flag.Uint64("period", 2, "fanout mode: subscription period (chronons)")

		shardAddrs = flag.String("shard-addrs", "", "comma-separated per-shard rtwire addresses (shard 0 first): route the mixed load by client-side placement and report per-shard throughput")
	)
	flag.Parse()
	var err error
	switch {
	case *shardAddrs != "":
		err = runSharded(*shardAddrs, *conns, *ops, *deadln, *chronon)
	case *soak > 0:
		err = runSoak(*addr, *soak, *soakFactor, *chronon)
	case *fanout > 0:
		err = runFanout(*addr, *fanout, *writers, *ops, *deadln, *period, *chronon)
	default:
		err = run(*addr, *conns, *ops, *deadln, *chronon)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtdbload:", err)
		os.Exit(1)
	}
}

// tally is one connection's closed-loop outcome count.
type tally struct {
	queries, hits, misses, expired, backpressure atomic.Uint64

	// Failover accounting across all connections.
	ackedWrites, readOnly, opFailed    atomic.Uint64
	failedOver, degraded, stale, hbCut atomic.Uint64
	seqWatermark                       atomic.Uint64 // max client SeqWatermark
}

func run(addr string, conns, ops int, deadln uint64, chronon time.Duration) error {
	var (
		wg        sync.WaitGroup
		t         tally
		latMu     sync.Mutex
		latencies []float64 // microseconds, query round trips
		errs      = make(chan error, conns)
	)
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{
				Name:              fmt.Sprintf("load-%d", id),
				ChrononDuration:   chronon,
				RetryAttempts:     -1, // failover: exhaust the address list
				HeartbeatInterval: 100 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			defer func() {
				t.failedOver.Add(c.Stats.FailedOver.Load())
				t.degraded.Add(c.Stats.Degraded.Load())
				t.stale.Add(c.Stats.StaleRejected.Load())
				t.hbCut.Add(c.Stats.HeartbeatTimeouts.Load())
				t.readOnly.Add(c.Stats.ReadOnlyRejects.Load())
				for {
					w, old := c.Stats.SeqWatermark.Load(), t.seqWatermark.Load()
					if w <= old || t.seqWatermark.CompareAndSwap(old, w) {
						break
					}
				}
			}()
			var local []float64
			for op := 0; op < ops; op++ {
				switch op % 5 {
				case 0, 1:
					if c.InjectSample("temp", strconv.Itoa(18+(id*7+op)%12)) == nil {
						t.ackedWrites.Add(1)
					}
				case 2:
					if c.InjectSample("pressure", strconv.Itoa(99+(id+op)%4)) == nil {
						t.ackedWrites.Add(1)
					}
				case 3, 4:
					q := client.Query{
						Query: "status_q", Candidate: "ok",
						Kind: deadline.Firm, Deadline: timeseq.Time(deadln), MinUseful: 1,
					}
					if op%10 == 4 {
						q = client.Query{
							Query: "temp_q",
							Kind:  deadline.Soft, Deadline: timeseq.Time(deadln),
							MinUseful: 2,
							Decay:     rtwire.Decay{ID: rtwire.DecayHyperbolic, Max: 10},
						}
					}
					qs := time.Now()
					res, err := c.Query(q)
					t.queries.Add(1)
					switch {
					case err == client.ErrBackpressure || (err != nil && res.Missed):
						t.backpressure.Add(1)
						t.misses.Add(1)
					case errors.Is(err, client.ErrReadOnly):
						// Mid-failover: a firm query landed on a standby.
						t.misses.Add(1)
					case err != nil:
						// An outage longer than the retry budget: the op
						// failed; the run keeps going and reports it.
						t.opFailed.Add(1)
						t.misses.Add(1)
					case res.ExpiredOnArrival:
						t.expired.Add(1)
						t.misses.Add(1)
					case res.Missed:
						t.misses.Add(1)
					default:
						t.hits.Add(1)
					}
					local = append(local, float64(time.Since(qs).Microseconds()))
				}
			}
			if err := c.Flush(); err != nil {
				errs <- err
				return
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	totalOps := uint64(conns * ops)
	fmt.Printf("%d conns × %d ops in %v (%.0f ops/s closed-loop)\n",
		conns, ops, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds())
	fmt.Printf("queries: %d  hit %d  miss %d (expired-on-arrival %d, backpressure %d)\n",
		t.queries.Load(), t.hits.Load(), t.misses.Load(), t.expired.Load(), t.backpressure.Load())
	if len(latencies) > 0 {
		s := stats.Summarize(latencies)
		fmt.Printf("query rtt µs: mean %.0f  median %.0f  min %.0f  max %.0f\n",
			s.Mean, s.Median, s.Lo, s.Hi)
	}

	// Fetch the server's own books over the wire and render the same
	// metrics table rtdbd prints, then check the conservation law
	// remotely: every query this tool (and anyone else) submitted is
	// accounted as exactly one terminal outcome.
	c, err := client.Dial(addr, client.Options{Name: "load-metrics"})
	if err != nil {
		return err
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		return err
	}
	tab := stats.NewTable("metric", "value")
	for _, p := range m.Pairs {
		tab.Row(p.Name, p.Value)
	}
	fmt.Println()
	fmt.Print(tab.String())

	mm := m.Map()
	in := mm["queries_in"]
	accounted := mm["queries_rejected"] + mm["deadline_hit"] + mm["deadline_miss"] + mm["no_deadline"]
	if in != accounted {
		return fmt.Errorf("conservation violated on server: %d queries in, %d accounted", in, accounted)
	}
	fmt.Printf("\nconservation (server books): %d queries in == %d rejected + %d hit + %d missed + %d no-deadline ✓\n",
		in, mm["queries_rejected"], mm["deadline_hit"], mm["deadline_miss"], mm["no_deadline"])

	// Failover accounting: how often connections changed nodes, how many
	// queries were served degraded by a standby, and — the durability bar —
	// whether the node we ended on carries every write the lost primary
	// acknowledged up to the last replication sequence heard from it.
	fmt.Printf("failover: %d acked writes, %d failed-over, %d degraded, %d read-only rejects, %d failed ops, %d stale-fenced, %d heartbeat cuts\n",
		t.ackedWrites.Load(), t.failedOver.Load(), t.degraded.Load(), t.readOnly.Load(), t.opFailed.Load(), t.stale.Load(), t.hbCut.Load())
	if w := t.seqWatermark.Load(); w > 0 {
		finalSeq, ok := mm["wal_seq"]
		if !ok {
			return fmt.Errorf("failed over past seq %d but the final node reports no wal_seq", w)
		}
		if finalSeq < w {
			return fmt.Errorf("LOST ACKED WRITES: final node at wal_seq %d < pre-failover watermark %d (%d missing)",
				finalSeq, w, w-finalSeq)
		}
		fmt.Printf("failover durability: final wal_seq %d >= pre-failover watermark %d — zero lost acked writes ✓\n", finalSeq, w)
	}
	return nil
}
