// Command daccsim regenerates experiments E5 and E8: the data-accumulating
// termination sweep over the arrival-law family f(n,t) = n + k·n^γ·t^β of
// §4.2, and the rt-PROC(p) staircase of §6/§7 (minimum processors to meet a
// deadline, in the analytic model and on the goroutine message-passing
// system).
package main

import (
	"flag"
	"fmt"
)

import "rtc/internal/experiments"

func main() {
	which := flag.String("exp", "both", "which experiment to run: e5, e8, or both")
	flag.Parse()

	if *which == "e5" || *which == "both" {
		fmt.Println("E5 — d-algorithm termination across arrival laws (n=64, rate=2, c=1)")
		fmt.Println()
		_, table := experiments.E5DataAccumulating()
		fmt.Print(table)
		fmt.Println()
	}
	if *which == "e8" || *which == "both" {
		fmt.Println("E8 — rt-PROC staircase: minimum processors to meet the deadline")
		fmt.Println()
		_, table := experiments.E8RTProc()
		fmt.Print(table)
	}
}
