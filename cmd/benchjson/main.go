// Command benchjson converts `go test -bench` text output into a JSON
// summary keyed by benchmark name, recording ns/op plus B/op and
// allocs/op when the run used -benchmem. It reads stdin and writes the
// JSON document to the file named by -o (stdout when omitted):
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson -o BENCH_adhoc.json
//
// The output is deterministic (benchmarks sorted by name) so committed
// snapshots diff cleanly between runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := parse(bufio.NewScanner(os.Stdin))
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parse consumes go test -bench output. Result lines look like
//
//	BenchmarkName-8   1234   5678 ns/op   910 B/op   11 allocs/op
//
// where the -8 GOMAXPROCS suffix and the memory columns are optional.
func parse(sc *bufio.Scanner) Doc {
	doc := Doc{Benchmarks: []Entry{}}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package runs emit one pkg: header each; keep them all.
			p := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if doc.Pkg == "" {
				doc.Pkg = p
			} else if !strings.Contains(doc.Pkg, p) {
				doc.Pkg += ", " + p
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		e := Entry{Name: trimProcs(f[0])}
		var err error
		if e.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		if e.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				e.BytesPerOp = &v
			case "allocs/op":
				e.AllocsPerOp = &v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	return doc
}

// trimProcs drops the trailing -N GOMAXPROCS suffix from a benchmark name
// while keeping sub-benchmark paths (Name/sub=1-8 → Name/sub=1).
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
