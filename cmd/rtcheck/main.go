// Command rtcheck demonstrates the language-theoretic core of the
// reproduction: it runs the executable Theorem 3.1 / Corollary 3.2
// refutations (experiment E1) and, optionally, decides membership of a
// user-supplied lasso ω-word in L_ω = (a^u b^x c^v d^x $)^ω… against the
// candidate Büchi automata.
//
// Usage:
//
//	rtcheck                         # run the E1 refutation table
//	rtcheck -lasso 'abcd$:abbcdd$'  # prefix:cycle membership check
//	rtcheck -random 25 -seed 7      # more random candidates
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rtc/internal/automata"
	"rtc/internal/complexity"
	"rtc/internal/experiments"
	"rtc/internal/omega"
)

func main() {
	lasso := flag.String("lasso", "", "check membership of prefix:cycle in L_ω")
	random := flag.Int("random", 12, "number of random candidate automata for E1")
	seed := flag.Int64("seed", 1, "random seed")
	space := flag.Bool("space", false, "print the rt-SPACE profile of the L_ω acceptor")
	flag.Parse()

	if *lasso != "" {
		checkLasso(*lasso)
		return
	}
	if *space {
		printSpaceProfile()
		return
	}

	fmt.Println("E1 — Theorem 3.1 / Corollary 3.2: every finite-state candidate is refuted")
	fmt.Println()
	res := experiments.E1NonRegular(*random, *seed)
	fmt.Print(res.Table)
	fmt.Printf("\n%d DFA and %d Büchi candidates — all refuted: %v\n",
		res.DFACandidates, res.BuchiCandidates, res.AllRefuted)
	if !res.AllRefuted {
		os.Exit(1)
	}
}

func printSpaceProfile() {
	fmt.Println("rt-SPACE profile of the unbounded L_ω acceptor (the memory")
	fmt.Println("Theorem 3.1 shows finite-state devices lack):")
	xs := []int{2, 4, 8, 16, 32, 64}
	prof := complexity.SpaceProfile(xs, 256)
	for i, x := range xs {
		fmt.Printf("  block size x=%-3d → %d counter cells (≈ 2x+2)\n", x, prof[i])
	}
}

func checkLasso(spec string) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 || parts[1] == "" {
		fmt.Fprintln(os.Stderr, "rtcheck: -lasso wants prefix:cycle with a non-empty cycle")
		os.Exit(2)
	}
	w := omega.LassoWord{Prefix: automata.Syms(parts[0]), Cycle: automata.Syms(parts[1])}
	fmt.Printf("word: %v\n", w)
	fmt.Printf("in L_ω: %v\n", omega.InLOmega(w))
	for _, c := range []struct {
		name string
		b    *omega.Buchi
	}{
		{"shape candidate", omega.CandidateShapeBuchi()},
		{"bounded k=2 candidate", omega.CandidateBoundedBuchi(2)},
	} {
		_, ok := c.b.AcceptsLasso(w)
		fmt.Printf("%s accepts: %v\n", c.name, ok)
	}
}
