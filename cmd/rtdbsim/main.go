// Command rtdbsim regenerates experiment E6: the recognition problem for
// real-time database queries (Definition 5.1) — aperiodic and periodic
// queries over a live sampled database, with firm-deadline pressure, run
// through the real-time algorithm acceptor of Definition 3.3/3.4.
package main

import (
	"flag"
	"fmt"

	"rtc/internal/experiments"
	"rtc/internal/relational"
	"rtc/internal/rtdb"
	"rtc/internal/timeseq"
)

func main() {
	def := experiments.DefaultE6Config()
	var (
		horizon  = flag.Uint64("horizon", uint64(def.Horizon), "simulation horizon (chronons)")
		evalCost = flag.Uint64("eval-cost", def.EvalCost, "chronons one query evaluation costs")
		period   = flag.Uint64("sample-period", uint64(def.SamplePeriod), "image-object sampling period (chronons)")
	)
	flag.Parse()
	cfg := experiments.E6Config{
		Horizon:      timeseq.Time(*horizon),
		EvalCost:     *evalCost,
		SamplePeriod: timeseq.Time(*period),
	}

	fmt.Println("E6 — real-time database recognition (Definition 5.1)")
	fmt.Printf("(horizon %d, eval cost %d, sample period %d)\n", cfg.Horizon, cfg.EvalCost, cfg.SamplePeriod)
	fmt.Println()
	_, table := experiments.E6RTDBWith(cfg)
	fmt.Print(table)

	fmt.Println()
	fmt.Println("E3 — Figure 1 database under the Figure 2 query")
	fmt.Println()
	res := experiments.E3NGC()
	fmt.Print(res.Table)
	fmt.Printf("\nmatches Figure 2 exactly: %v\n", res.Match)

	temporalDemo()
}

// temporalDemo shows the §5.1.2 temporal layer: the Figure 1 schedule as a
// valid-time relation, queried as-of an instant and across a window.
func temporalDemo() {
	fmt.Println()
	fmt.Println("Temporal layer — the Figure 1 schedule with valid-time lifespans")
	fmt.Println("(chronon 0–30 ≈ October 1999, 31–60 ≈ November 1999)")
	fmt.Println()
	schema := relational.Schema{Name: "Schedules", Attrs: []relational.Attribute{"City", "Title"}}
	h := rtdb.NewHistoricalRelation(schema)
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(h.Insert(relational.Tuple{"Mexico City", "Terre Sauvage"},
		rtdb.NewLifespan(rtdb.Interval{Lo: 0, Hi: 30})))
	must(h.Insert(relational.Tuple{"St. Catharines", "Painter of the Soil"},
		rtdb.NewLifespan(rtdb.Interval{Lo: 31, Hi: 60})))
	must(h.Insert(relational.Tuple{"Hamilton", "Sorrowful Images"},
		rtdb.NewLifespan(rtdb.Interval{Lo: 31, Hi: 60})))
	db := rtdb.NewHistoricalDatabase()
	db.Add(h)
	q := relational.Project{
		Input: relational.From{Name: "Schedules", Schema: schema},
		Attrs: []relational.Attribute{"City"},
	}
	for _, at := range []uint64{15, 45} {
		r, err := db.QueryAt(q, timeseq.Time(at))
		must(err)
		fmt.Printf("cities with exhibitions at chronon %d: ", at)
		for i, tup := range r.Tuples() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(tup[0])
		}
		fmt.Println()
	}
	hist, err := db.QueryDuring(q, 0, 60)
	must(err)
	fmt.Println("answer lifespans over [0,60]:")
	for _, row := range hist.Rows() {
		fmt.Printf("  %-15s valid %v\n", row.Tuple[0], row.Valid)
	}
}
