package rtc_test

// Ablation benchmarks for the design decisions DESIGN.md records: the lasso
// representation (exact decidability) vs. generator words (horizon scans),
// valuation clamping at the guard maximum (the TBA configuration space), and
// binary-fold vs. k-way merging of word families.

import (
	"testing"

	"rtc/internal/omega"
	"rtc/internal/timed"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Lasso vs. generator: deciding recurrence on a lasso is O(cycle), while a
// generator word can only be scanned to a horizon — and the horizon must be
// generous to be trustworthy. The benchmark quantifies that gap for the
// same underlying word.
func BenchmarkAblation_LassoExact(b *testing.B) {
	m := omega.MemberLasso(6)
	for i := 0; i < b.N; i++ {
		if !omega.InLOmega(m) {
			b.Fatal("member rejected")
		}
	}
}

func BenchmarkAblation_GenHorizonScan(b *testing.B) {
	// The same (a b^6 c d^6 $)^ω as a generator; membership evidence needs
	// a long scan.
	m := omega.MemberLasso(6)
	gen := word.Gen{F: func(i uint64) word.TimedSym {
		return word.TimedSym{Sym: m.At(int(i)), At: timeseq.Time(i / 15)}
	}}
	const horizon = 4096
	for i := 0; i < b.N; i++ {
		bad := false
		for j := uint64(0); j < horizon; j += 15 {
			// Check one block per cycle-length stride.
			if gen.At(j).Sym != "a" {
				bad = true
			}
		}
		if bad {
			b.Fatal("scan misaligned")
		}
	}
}

// Clamping ceiling: the TBA emptiness search explores per-step delays up to
// maxConst+1, so its configuration space grows with the largest guard
// constant. The same automaton shape with constants 2 / 20 / 60 shows the
// cost that clamping at the (minimal) guard maximum keeps in check.
func BenchmarkAblation_TBAClamp2(b *testing.B)  { benchClamp(b, 2) }
func BenchmarkAblation_TBAClamp20(b *testing.B) { benchClamp(b, 20) }
func BenchmarkAblation_TBAClamp60(b *testing.B) { benchClamp(b, 60) }

func benchClamp(b *testing.B, bound timeseq.Time) {
	b.Helper()
	cs := timed.NewClockSet("x", "y")
	a := timed.NewTBA([]word.Symbol{"a", "b"}, 2, 0, cs)
	a.AddTrans(0, 1, "a", cs.Le("x", bound), "y")
	a.AddTrans(1, 0, "b", cs.Le("y", bound), "x")
	a.SetAccept(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, empty := a.Empty(); empty {
			b.Fatal("declared empty")
		}
	}
}

// Binary fold vs. k-way merge over the same 16-stream family: ConcatAll
// builds a chain of 15 binary merges (each prefix element passes through
// up to 15 cursors), MergeMany keeps one open-stream set.
func BenchmarkAblation_ConcatAll16(b *testing.B) {
	streams := ablationStreams()
	for i := 0; i < b.N; i++ {
		ws := make([]word.Word, len(streams))
		for k := range streams {
			ws[k] = streams[k]
		}
		m := word.ConcatAll(ws...)
		if p := word.Prefix(m, 256); len(p) != 256 {
			b.Fatal("short prefix")
		}
	}
}

func BenchmarkAblation_MergeMany16(b *testing.B) {
	streams := ablationStreams()
	for i := 0; i < b.N; i++ {
		m := word.MergeMany(func(k uint64) word.Word {
			if int(k) < len(streams) {
				return streams[k]
			}
			return word.MustLasso(nil, word.Finite{{Sym: "pad", At: 1 << 40}}, 1)
		})
		if p := word.Prefix(m, 256); len(p) != 256 {
			b.Fatal("short prefix")
		}
	}
}

func ablationStreams() []word.Finite {
	streams := make([]word.Finite, 16)
	for k := range streams {
		w := make(word.Finite, 32)
		for i := range w {
			w[i] = word.TimedSym{Sym: "s", At: timeseq.Time(k + 3*i)}
		}
		streams[k] = w
	}
	return streams
}
