package rtc_test

// Cross-package integration tests. The paper's central thesis (Claim 1:
// "well-behaved timed ω-languages model exactly all real-time
// computations") is supported here in its executable form: every word the
// application layers construct — deadline instances, data-accumulating
// streams, database recognition words, network traces — is a well-behaved
// timed ω-word, the classical embedding is not, and each acceptor's verdict
// round-trips against its ground truth through the full pipeline.

import (
	"strconv"
	"testing"

	"rtc/internal/adhoc"
	"rtc/internal/automata"
	"rtc/internal/dacc"
	"rtc/internal/deadline"
	"rtc/internal/rtdb"
	"rtc/internal/timeseq"
	"rtc/internal/word"
)

// Claim 1 evidence, one construction per application area: every word is
// monotone and progressing over a long observation window.
func TestAllApplicationWordsWellBehaved(t *testing.T) {
	horizon := uint64(600)

	words := map[string]word.Word{}

	words["deadline (i)"] = deadline.Instance{
		Input: automata.Syms("cba"), Proposed: automata.Syms("abc"),
	}.Word()
	words["deadline (iii)"] = deadline.Instance{
		Input: automata.Syms("cba"), Proposed: automata.Syms("abc"),
		Kind: deadline.Soft, Deadline: 9, MinUseful: 2, U: deadline.Hyperbolic(8, 9),
	}.Word()

	dinst, _ := dacc.BuildInstance(dacc.PolyLaw{K: 1, Gamma: 0.5, Beta: 0.5}, 9,
		dacc.Workload{Rate: 1, WorkPerDatum: 1}, 997, 100000, false)
	words["data-accumulating"] = dinst.Word()

	sp := rtdbSpec()
	words["db_B"] = sp.DBWord()
	words["aperiodic query"] = word.Concat(sp.DBWord(), rtdb.QuerySpec{
		Query: "status_q", Issue: 7, Candidate: "ok",
	}.AqWord())
	words["periodic query"] = rtdb.PeriodicSpec{
		Query: "status_q", Issue: 2, Period: 10,
		Candidates: func(uint64) rtdb.Value { return "ok" },
	}.PqWord()

	net := adhoc.NewNetwork(lineNet(4))
	net.Inject(adhoc.Message{ID: 1, Src: 1, Dst: 4, At: 3, Payload: "b"})
	net.Run(30)
	words["routing word"] = adhoc.RoutingWord(net)
	words["component H_2"] = adhoc.ComponentWord(net, 2)

	for name, w := range words {
		if !word.MonotoneWithin(w, horizon) {
			t.Errorf("%s: not monotone", name)
		}
		if name == "component H_2" {
			continue // H_i merges a finite receive word; progress is via h_i
		}
		if !word.WellBehavedWithin(w, horizon) {
			t.Errorf("%s: fails the well-behavedness check", name)
		}
	}

	// The crisp delimitation of §3.2: the classical embedding is never well
	// behaved.
	classical := word.MustLasso(nil, word.FromClassical("abc", 0), 0)
	if word.WellBehavedWithin(classical, horizon) {
		t.Error("classical 00…0 embedding claimed well behaved")
	}
}

// The full deadline pipeline agrees with first-principles timing: the
// acceptor's flip point equals work-cost across a joint sweep of deadline
// and input size.
func TestDeadlinePipelineAgainstFirstPrinciples(t *testing.T) {
	for n := 1; n <= 5; n++ {
		input := automata.Syms("edcba"[:n])
		sorted := make([]word.Symbol, n)
		copy(sorted, input)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		finish := timeseq.Time(3*n - 1) // cost 3/symbol from tick 0
		for _, td := range []timeseq.Time{finish, finish + 1, finish + 5} {
			inst := deadline.Instance{
				Input: input, Proposed: sorted,
				Kind: deadline.Firm, Deadline: td, MinUseful: 1,
			}
			solver := &deadline.FuncSolver{
				Cost:  func(k int) uint64 { return 3 * uint64(k) },
				Solve: func(in []word.Symbol) []word.Symbol { return sorted },
			}
			res := deadline.Accepts(inst, solver, 400)
			want := td > finish
			if res.Verdict.Accepted() != want {
				t.Errorf("n=%d td=%d finish=%d: verdict %v", n, td, finish, res.Verdict)
			}
		}
	}
}

// The RTDB recognition acceptor agrees with the spec-level ground truth on
// a grid of candidates and issue times — through word construction,
// concatenation, machine execution and verdicts.
func TestRTDBPipelineMatchesGroundTruth(t *testing.T) {
	sp := rtdbSpec()
	cat := rtdbCatalog()
	reg := rtdb.DeriveRegistry{"status": statusDerive}
	for _, issue := range []timeseq.Time{3, 12, 27, 44} {
		for _, cand := range []rtdb.Value{"ok", "high", "nope"} {
			qs := rtdb.QuerySpec{Query: "status_q", Issue: issue, Candidate: cand}
			want := sp.MemberAq(cat, qs)
			res := rtdb.RunAperiodic(sp, qs, cat, reg, 2, 400)
			if res.Verdict.Accepted() != want {
				t.Errorf("issue=%d cand=%q: verdict %v, ground truth %v",
					issue, cand, res.Verdict, want)
			}
			if !res.Verdict.Proven() {
				t.Errorf("issue=%d cand=%q: verdict not proven", issue, cand)
			}
		}
	}
}

// The network trace, its word rendering, and the decoded events agree —
// trace → word → events is lossless for the §5.2.3 fields.
func TestNetworkWordRoundTrip(t *testing.T) {
	net := adhoc.NewNetwork(lineNet(5))
	net.Inject(adhoc.Message{ID: 1, Src: 1, Dst: 5, At: 2, Payload: "payload"})
	net.Run(20)
	tr := net.Trace()
	evs, ok := adhoc.DecodeEventsWord(tr.EventsWord())
	if !ok {
		t.Fatal("events word does not decode")
	}
	if len(evs) != len(tr.Sends)+len(tr.Recvs) {
		t.Fatalf("decoded %d events, trace has %d", len(evs), len(tr.Sends)+len(tr.Recvs))
	}
	// Validate the route through the language layer too.
	ck := tr.CheckRoute(1, net)
	if !ck.OK || ck.Latency != 4 {
		t.Fatalf("route check %+v", ck)
	}
}

// ---------------------------------------------------------------------------
// shared fixtures

func lineNet(n int) []*adhoc.Node {
	nodes := make([]*adhoc.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &adhoc.Node{
			ID:    i + 1,
			Mob:   adhoc.Static(adhoc.Pos{X: float64(i) * 9, Y: 0}),
			Range: 10,
			Proto: &adhoc.Flooding{},
		}
	}
	return nodes
}

func statusDerive(src map[string]rtdb.Value) rtdb.Value {
	tv, _ := strconv.Atoi(src["temp"])
	lv, _ := strconv.Atoi(src["limit"])
	if tv > lv {
		return "high"
	}
	return "ok"
}

func rtdbSpec() rtdb.Spec {
	return rtdb.Spec{
		Invariants: map[string]rtdb.Value{"limit": "22"},
		Derived: []*rtdb.DerivedObject{{
			Name: "status", Sources: []string{"temp", "limit"}, Derive: statusDerive,
		}},
		Images: []*rtdb.ImageObject{{
			Name: "temp", Period: 5,
			Read: func(at timeseq.Time) rtdb.Value { return strconv.Itoa(20 + int(at)/10) },
		}},
	}
}

func rtdbCatalog() rtdb.Catalog {
	return rtdb.Catalog{
		"status_q": func(v *rtdb.View) []rtdb.Value {
			if s, ok := v.DeriveNow("status"); ok {
				return []rtdb.Value{s}
			}
			return nil
		},
	}
}
